package placer

import "lemur/internal/obs"

// Hoisted metric handles: each update is one atomic branch plus one atomic
// add, so the heuristic's inner loops stay wired unconditionally.
var (
	mStageCheckOK   = obs.C("lemur_placer_stagecheck_total", obs.L("verdict", "ok"))
	mStageCheckFail = obs.C("lemur_placer_stagecheck_total", obs.L("verdict", "fail"))
	mCoalesceMoves  = obs.C("lemur_placer_coalesce_moves_total")
	mEvictions      = obs.C("lemur_placer_evictions_total")
	mLPSolves       = obs.C("lemur_placer_lp_solves_total")
	mLPIterations   = obs.H("lemur_placer_lp_iterations")
	mLPObjective    = obs.H("lemur_placer_lp_objective_bps")

	// Branch-and-bound search counters (the Optimal scheme; see
	// bruteforce.go). Subtree counts, not leaf counts: one increment may
	// stand for an astronomically large cut of the combo space.
	mBBPruned       = obs.C("lemur_placer_bb_pruned_total")
	mBBCollapsed    = obs.C("lemur_placer_bb_symmetry_collapsed_total")
	mBBIncumbent    = obs.C("lemur_placer_bb_incumbent_updates_total")
	mBBDemandPruned = obs.C("lemur_placer_bb_demand_pruned_total")
	mBBBindRejected = obs.C("lemur_placer_bb_bind_rejected_total")
)
