package placer

import "lemur/internal/obs"

// Hoisted metric handles: each update is one atomic branch plus one atomic
// add, so the heuristic's inner loops stay wired unconditionally.
var (
	mStageCheckOK   = obs.C("lemur_placer_stagecheck_total", obs.L("verdict", "ok"))
	mStageCheckFail = obs.C("lemur_placer_stagecheck_total", obs.L("verdict", "fail"))
	mCoalesceMoves  = obs.C("lemur_placer_coalesce_moves_total")
	mEvictions      = obs.C("lemur_placer_evictions_total")
	mLPSolves       = obs.C("lemur_placer_lp_solves_total")
	mLPIterations   = obs.H("lemur_placer_lp_iterations")
	mLPObjective    = obs.H("lemur_placer_lp_objective_bps")
)
