package placer

import (
	"testing"

	"lemur/internal/hw"
)

func TestMILPMatchesOrBeatsHeuristicAllocation(t *testing.T) {
	for _, src := range []string{simpleChain, `
chain a {
  slo { tmin = 2Gbps  tmax = 100Gbps }
  acl0 = ACL(rules = 1024)
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  acl0 -> enc0 -> fwd0
}
chain b {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  ded0 = Dedup()
  lim0 = Limiter()
  fwd1 = IPv4Fwd()
  ded0 -> lim0 -> fwd1
}`} {
		in := input(t, hw.NewPaperTestbed(), src)
		heur, err := Place(SchemeLemur, in)
		if err != nil {
			t.Fatal(err)
		}
		milp, err := Place(SchemeMILP, in)
		if err != nil {
			t.Fatal(err)
		}
		if !heur.Feasible || !milp.Feasible {
			t.Fatalf("heur=%v(%s) milp=%v(%s)", heur.Feasible, heur.Reason, milp.Feasible, milp.Reason)
		}
		// Exact allocation on the same structure can never be worse.
		if milp.Marginal < heur.Marginal-1e6 {
			t.Errorf("MILP marginal %v < heuristic %v", milp.Marginal, heur.Marginal)
		}
		// Invariants still hold under MILP allocation.
		checkInvariants(t, 0, SchemeMILP, in, milp)
	}
}

func TestMILPInfeasibleFallsBack(t *testing.T) {
	in := input(t, hw.NewPaperTestbed(), `
chain big {
  slo { tmin = 80Gbps  tmax = 100Gbps }
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  enc0 -> fwd0
}`)
	res, err := Place(SchemeMILP, in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("80G through a 40G NIC must be infeasible")
	}
}

func TestMILPRespectsNonReplicable(t *testing.T) {
	in := input(t, hw.NewPaperTestbed(), `
chain lim {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  ded0 = Dedup()
  lim0 = Limiter()
  fwd0 = IPv4Fwd()
  ded0 -> lim0 -> fwd0
}`)
	res, err := Place(SchemeMILP, in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	for _, sg := range res.Subgroups {
		if !sg.Replicable && sg.Cores != 1 {
			t.Errorf("non-replicable %s got %d cores from the MILP", sg.Name(), sg.Cores)
		}
	}
}
