package placer

import (
	"lemur/internal/hw"
	"lemur/internal/nfgraph"
)

// computeSubgroups derives the run-to-completion subgroups of one chain
// under an assignment: maximal runs of server-assigned nodes connected
// 1-in/1-out. A branch or merge node may sit inside a run but makes the
// subgroup non-replicable (§3.2); it also ends (branch) or starts (merge)
// the run so traffic weights stay uniform within a subgroup.
func computeSubgroups(in *Input, chainIdx int, g *nfgraph.Graph, assign map[*nfgraph.Node]Assign) []*Subgroup {
	return computeSubgroupsSplit(in, chainIdx, g, assign, nil)
}

// computeSubgroupsSplit is computeSubgroups with explicit break marks:
// a marked node starts a new subgroup even mid-run.
func computeSubgroupsSplit(in *Input, chainIdx int, g *nfgraph.Graph, assign map[*nfgraph.Node]Assign, breaks map[*nfgraph.Node]bool) []*Subgroup {
	var subs []*Subgroup
	inSub := make([]bool, len(g.Order)) // indexed by Node.Seq

	overhead := in.Topo.EncapCycles + in.Topo.DemuxCycles

	for _, n := range g.Order {
		a, ok := assign[n]
		if !ok || a.Platform != hw.Server || inSub[n.Seq] {
			continue
		}
		sg := &Subgroup{ChainIdx: chainIdx, Server: a.Device, Weight: n.Weight, Replicable: true}
		cur := n
		for {
			inSub[cur.Seq] = true
			sg.Nodes = append(sg.Nodes, cur)
			sg.Cycles += in.nodeCycles(cur)
			if !cur.Meta.Replicable || cur.IsBranch() || cur.IsMerge() {
				sg.Replicable = false
			}
			// Extend along a linear server run: exactly one out edge, the
			// successor is on the same server, unvisited, not a merge, not
			// explicitly split off, and the current node is not a branch.
			if cur.IsBranch() || len(cur.Outs) != 1 {
				break
			}
			next := cur.Outs[0].Node
			na, ok := assign[next]
			if !ok || na.Platform != hw.Server || na.Device != a.Device || inSub[next.Seq] ||
				next.IsMerge() || breaks[next] {
				break
			}
			cur = next
		}
		sg.Cycles += overhead
		subs = append(subs, sg)
	}
	return subs
}

// nodeReplicable reports whether one node can replicate across cores on its
// own: a per-flow-safe NF that is neither a branch nor a merge point. Both
// splitBreaks and the branch-and-bound rate bound segment non-replicable
// subgroups with it, which is what makes the bound admissible for the split
// variant.
func nodeReplicable(n *nfgraph.Node) bool {
	return n.Meta.Replicable && !n.IsBranch() && !n.IsMerge()
}

// splitBreaks proposes break marks isolating non-replicable NFs from
// replicable neighbours within each server run, so the scalable parts can
// take extra cores. The extra subgroup boundary costs a switch bounce and a
// core, which the LP and allocation account for.
func splitBreaks(in *Input, assign map[*nfgraph.Node]Assign) map[*nfgraph.Node]bool {
	var breaks map[*nfgraph.Node]bool // allocated on first mark; usually stays nil
	nodeRepl := nodeReplicable
	for ci, g := range in.Chains {
		for _, sg := range computeSubgroups(in, ci, g, assign) {
			if len(sg.Nodes) < 2 || sg.Replicable {
				continue
			}
			hasRepl := false
			for _, n := range sg.Nodes {
				if nodeRepl(n) {
					hasRepl = true
				}
			}
			if !hasRepl {
				continue // nothing to rescue
			}
			for i := 1; i < len(sg.Nodes); i++ {
				if nodeRepl(sg.Nodes[i]) != nodeRepl(sg.Nodes[i-1]) {
					if breaks == nil {
						breaks = make(map[*nfgraph.Node]bool)
					}
					breaks[sg.Nodes[i]] = true
				}
			}
		}
	}
	return breaks
}

// computeNICUses collects SmartNIC-assigned nodes.
func computeNICUses(in *Input, chainIdx int, g *nfgraph.Graph, assign map[*nfgraph.Node]Assign) []*NICUse {
	var uses []*NICUse
	for _, n := range g.Order {
		if a, ok := assign[n]; ok && a.Platform == hw.SmartNIC {
			uses = append(uses, &NICUse{
				ChainIdx: chainIdx,
				Node:     n,
				Device:   a.Device,
				Weight:   n.Weight,
				Cycles:   in.rawWorstCycles(n),
			})
		}
	}
	return uses
}

// deviceVisits sums, per device, the traffic-weighted number of times a
// packet of this chain crosses the device's link (subgroup entries for
// servers, NF visits for SmartNICs). Used for the LP's link constraints.
func deviceVisits(subs []*Subgroup, nics []*NICUse, chainIdx int) map[string]float64 {
	visits := make(map[string]float64)
	for _, sg := range subs {
		if sg.ChainIdx == chainIdx {
			visits[sg.Server] += sg.Weight
		}
	}
	for _, u := range nics {
		if u.ChainIdx == chainIdx {
			visits[u.Device] += u.Weight
		}
	}
	return visits
}

// Bounces counts platform transitions of a chain under an assignment — the
// Minimum Bounce baseline's objective, also reported by the latency
// experiments.
func Bounces(g *nfgraph.Graph, assign map[*nfgraph.Node]Assign) int {
	return bounceCount(g, assign)
}

// bounceCount counts platform transitions along every linear path of the
// chain (the Minimum Bounce baseline's objective). The ToR is the implicit
// start and end, so a path beginning or ending off-switch also pays a
// transition.
func bounceCount(g *nfgraph.Graph, assign map[*nfgraph.Node]Assign) int {
	return bounceCountPaths(g.Paths(), assign)
}

// bounceCountPaths is bounceCount over pre-expanded paths.
func bounceCountPaths(paths []nfgraph.Path, assign map[*nfgraph.Node]Assign) int {
	total := 0
	for _, path := range paths {
		prev := hw.PISA // traffic enters via the ToR
		prevDev := ""
		for _, n := range path.Nodes {
			a := assign[n]
			if a.Platform != prev || (a.Platform != hw.PISA && a.Device != prevDev) {
				total++
				prev, prevDev = a.Platform, a.Device
			}
		}
		if prev != hw.PISA {
			total++ // return to the ToR for egress
		}
	}
	return total
}
