// Package lp implements a dense two-phase simplex solver for linear programs
// in the form
//
//	maximize  c·x   subject to  A·x <= b,  x >= 0
//
// plus a branch-and-bound wrapper for mixed-integer programs. The Placer
// uses the LP to maximize aggregate marginal throughput under link-capacity
// constraints (§3.2), and the MILP entry point reproduces the paper's
// open-sourced MILP formulation of placement.
package lp

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// Solver failure modes.
var (
	ErrInfeasible = errors.New("lp: infeasible")
	ErrUnbounded  = errors.New("lp: unbounded")
	ErrIterations = errors.New("lp: iteration limit exceeded")
)

// Problem is an LP in canonical inequality form.
type Problem struct {
	C []float64   // objective coefficients, length n
	A [][]float64 // m x n constraint matrix
	B []float64   // right-hand sides, length m
}

// Solution is an optimal point. Iterations counts simplex pivots across both
// phases — a cheap proxy for how hard the instance was.
type Solution struct {
	X          []float64
	Value      float64
	Iterations int
}

const (
	eps     = 1e-9
	maxIter = 20000
)

// Validate checks dimensions.
func (p *Problem) Validate() error {
	n := len(p.C)
	if len(p.A) != len(p.B) {
		return fmt.Errorf("lp: %d constraint rows but %d RHS entries", len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("lp: row %d has %d coefficients, want %d", i, len(row), n)
		}
	}
	return nil
}

// tableau holds the simplex working state: rows = constraints, cols =
// structural + slack + artificial variables, plus RHS column.
type tableau struct {
	a      [][]float64 // m x (ncols+1), last column is RHS
	basis  []int       // basic variable per row
	z      []float64   // reduced-cost row buffer, length ncols+1
	ncols  int
	pivots int
}

// scratch is the pooled simplex working set: one flat float64 arena backing
// every tableau row, plus the row headers and the basis / objective /
// reduced-cost / banned-column buffers. The Placer solves thousands of small
// LPs per placement, so these transient allocations dominate its profile;
// pooling them makes repeat solves allocation-free apart from Solution.X
// (which escapes to the caller and stays fresh).
type scratch struct {
	flat   []float64
	rows   [][]float64
	basis  []int
	artOf  []int
	obj    []float64
	z      []float64
	banned []bool
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// grownFloats resizes b to length n, zeroed.
func grownFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = 0
	}
	return b
}

// grownBools resizes b to length n, zeroed.
func grownBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}

// grownInts resizes b to length n without zeroing (callers fully write it).
func grownInts(b []int, n int) []int {
	if cap(b) < n {
		return make([]int, n)
	}
	return b[:n]
}

// Solve finds an optimal solution via two-phase simplex with Bland's rule.
func Solve(p Problem) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	n, m := len(p.C), len(p.B)
	if m == 0 {
		// No constraints: bounded only if c <= 0.
		for _, c := range p.C {
			if c > eps {
				return Solution{}, ErrUnbounded
			}
		}
		return Solution{X: make([]float64, n)}, nil
	}

	sc := scratchPool.Get().(*scratch)
	defer scratchPool.Put(sc)

	// Columns: n structural, m slacks, up to m artificials.
	var artRows []int
	for i := range p.B {
		if p.B[i] < -eps {
			artRows = append(artRows, i)
		}
	}
	nart := len(artRows)
	ncols := n + m + nart
	t := &tableau{ncols: ncols}
	sc.basis = grownInts(sc.basis, m)
	t.basis = sc.basis
	sc.z = grownFloats(sc.z, ncols+1)
	t.z = sc.z
	sc.flat = grownFloats(sc.flat, m*(ncols+1))
	if cap(sc.rows) < m {
		sc.rows = make([][]float64, m)
	}
	sc.rows = sc.rows[:m]
	for i := 0; i < m; i++ {
		sc.rows[i] = sc.flat[i*(ncols+1) : (i+1)*(ncols+1)]
	}
	t.a = sc.rows
	artCol := n + m
	sc.artOf = grownInts(sc.artOf, m) // row -> artificial column
	artOf := sc.artOf
	for _, r := range artRows {
		artOf[r] = artCol
		artCol++
	}
	for i := 0; i < m; i++ {
		row := t.a[i]
		neg := p.B[i] < -eps
		sign := 1.0
		if neg {
			sign = -1
		}
		for j := 0; j < n; j++ {
			row[j] = sign * p.A[i][j]
		}
		row[n+i] = sign // slack
		row[ncols] = sign * p.B[i]
		if neg {
			ac := artOf[i]
			row[ac] = 1
			t.basis[i] = ac
		} else {
			t.basis[i] = n + i
		}
	}

	if nart > 0 {
		// Phase 1: maximize -(sum of artificials).
		sc.obj = grownFloats(sc.obj, ncols)
		obj := sc.obj
		for _, r := range artRows {
			obj[artOf[r]] = -1
		}
		v, err := t.optimize(obj, nil)
		if err != nil {
			return Solution{}, err
		}
		if v < -eps {
			return Solution{}, ErrInfeasible
		}
		// Drive any artificial still basic (at zero) out of the basis.
		sc.banned = grownBools(sc.banned, ncols)
		banned := sc.banned
		for _, r := range artRows {
			banned[artOf[r]] = true
		}
		for i, b := range t.basis {
			if !banned[b] {
				continue
			}
			pivoted := false
			for j := 0; j < n+m; j++ {
				if math.Abs(t.a[i][j]) > eps {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; the artificial stays basic at zero, which
				// is harmless as long as it never re-enters (banned below).
				_ = i
			}
		}
		// Phase 2 with artificials banned from entering.
		sc.obj = grownFloats(sc.obj, ncols)
		copy(sc.obj, p.C)
		if _, err := t.optimize(sc.obj, banned); err != nil {
			return Solution{}, err
		}
	} else {
		sc.obj = grownFloats(sc.obj, ncols)
		copy(sc.obj, p.C)
		if _, err := t.optimize(sc.obj, nil); err != nil {
			return Solution{}, err
		}
	}

	sol := Solution{X: make([]float64, n), Iterations: t.pivots}
	for i, b := range t.basis {
		if b < n {
			sol.X[b] = t.a[i][ncols]
		}
	}
	for j, c := range p.C {
		sol.Value += c * sol.X[j]
	}
	return sol, nil
}

// optimize runs primal simplex for the given objective over the current
// basis, returning the objective value. banned marks columns that may not
// enter the basis.
func (t *tableau) optimize(obj []float64, banned []bool) (float64, error) {
	m, ncols := len(t.a), t.ncols
	// Reduced costs maintained implicitly: z_j - c_j computed on demand from
	// the priced-out objective row (pooled buffer; rebuildZ rewrites it).
	z := t.z
	rebuildZ := func() {
		for j := 0; j <= ncols; j++ {
			z[j] = 0
		}
		for j := 0; j < ncols; j++ {
			z[j] = -obj[j]
		}
		for i := 0; i < m; i++ {
			cb := obj[t.basis[i]]
			if cb == 0 {
				continue
			}
			for j := 0; j <= ncols; j++ {
				z[j] += cb * t.a[i][j]
			}
		}
	}
	rebuildZ()

	for iter := 0; iter < maxIter; iter++ {
		// Bland's rule: lowest-index column with negative reduced cost.
		enter := -1
		for j := 0; j < ncols; j++ {
			if banned != nil && banned[j] {
				continue
			}
			if z[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return z[ncols], nil // optimal
		}
		// Ratio test, Bland tie-break on basis index.
		leave, best := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if t.a[i][enter] > eps {
				r := t.a[i][ncols] / t.a[i][enter]
				if r < best-eps || (r < best+eps && (leave == -1 || t.basis[i] < t.basis[leave])) {
					best, leave = r, i
				}
			}
		}
		if leave == -1 {
			return 0, ErrUnbounded
		}
		t.pivot(leave, enter)
		// Update the objective row incrementally.
		f := z[enter]
		if f != 0 {
			for j := 0; j <= ncols; j++ {
				z[j] -= f * t.a[leave][j]
			}
		}
	}
	return 0, ErrIterations
}

// pivot makes column enter basic in row r.
func (t *tableau) pivot(r, enter int) {
	t.pivots++
	m, ncols := len(t.a), t.ncols
	pv := t.a[r][enter]
	row := t.a[r]
	for j := 0; j <= ncols; j++ {
		row[j] /= pv
	}
	for i := 0; i < m; i++ {
		if i == r {
			continue
		}
		f := t.a[i][enter]
		if f == 0 {
			continue
		}
		for j := 0; j <= ncols; j++ {
			t.a[i][j] -= f * row[j]
		}
	}
	t.basis[r] = enter
}
