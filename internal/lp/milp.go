package lp

import "math"

// SolveMILP solves the problem with integrality required on the variables
// whose integer[i] is true, via LP-relaxation branch and bound (best-first
// on a simple stack). It reproduces the paper's MILP placement formulation
// path: integer variables model per-subgroup core counts.
//
// maxNodes bounds the search; 0 means a generous default.
func SolveMILP(p Problem, integer []bool, maxNodes int) (Solution, error) {
	if maxNodes <= 0 {
		maxNodes = 100000
	}
	if len(integer) != len(p.C) {
		return Solution{}, ErrInfeasible
	}
	type node struct {
		extraA [][]float64
		extraB []float64
	}
	best := Solution{Value: math.Inf(-1)}
	found := false
	stack := []node{{}}
	nodes := 0

	// Sub-problem row/RHS headers are rebuilt in place across branch-and-bound
	// nodes — Solve copies coefficients into its own tableau and never retains
	// the Problem slices, so one backing array serves the whole search.
	var subA [][]float64
	var subB []float64
	for len(stack) > 0 && nodes < maxNodes {
		nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		subA = append(append(subA[:0], p.A...), nd.extraA...)
		subB = append(append(subB[:0], p.B...), nd.extraB...)
		sub := Problem{C: p.C, A: subA, B: subB}
		sol, err := Solve(sub)
		if err != nil {
			continue // infeasible or unbounded branch: prune
		}
		if found && sol.Value <= best.Value+eps {
			continue // bound
		}
		// Find most-fractional integer variable.
		branch, frac := -1, 0.0
		for i, isInt := range integer {
			if !isInt {
				continue
			}
			f := sol.X[i] - math.Floor(sol.X[i])
			if f > eps && f < 1-eps {
				d := math.Abs(f - 0.5)
				if branch == -1 || d < frac {
					branch, frac = i, d
				}
			}
		}
		if branch == -1 {
			// Integral: candidate incumbent.
			if !found || sol.Value > best.Value {
				best, found = sol, true
			}
			continue
		}
		floor := math.Floor(sol.X[branch])
		n := len(p.C)
		// x_branch <= floor
		le := make([]float64, n)
		le[branch] = 1
		// x_branch >= floor+1  =>  -x_branch <= -(floor+1)
		ge := make([]float64, n)
		ge[branch] = -1
		stack = append(stack,
			node{extraA: append(append([][]float64{}, nd.extraA...), le), extraB: append(append([]float64{}, nd.extraB...), floor)},
			node{extraA: append(append([][]float64{}, nd.extraA...), ge), extraB: append(append([]float64{}, nd.extraB...), -(floor + 1))},
		)
	}
	if !found {
		return Solution{}, ErrInfeasible
	}
	// Snap near-integral values.
	for i, isInt := range integer {
		if isInt {
			best.X[i] = math.Round(best.X[i])
		}
	}
	return best, nil
}
