package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimple2D(t *testing.T) {
	// max 3x+2y s.t. x+y<=4, x+3y<=6 -> x=4,y=0, value 12
	sol, err := Solve(Problem{
		C: []float64{3, 2},
		A: [][]float64{{1, 1}, {1, 3}},
		B: []float64{4, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 12) || !approx(sol.X[0], 4) || !approx(sol.X[1], 0) {
		t.Errorf("sol = %+v, want x=(4,0) v=12", sol)
	}
}

func TestInteriorOptimum(t *testing.T) {
	// max x+y s.t. 2x+y<=10, x+3y<=15 -> intersection x=3,y=4, value 7
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{2, 1}, {1, 3}},
		B: []float64{10, 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 7) || !approx(sol.X[0], 3) || !approx(sol.X[1], 4) {
		t.Errorf("sol = %+v, want (3,4) v=7", sol)
	}
}

func TestUnbounded(t *testing.T) {
	_, err := Solve(Problem{C: []float64{1}, A: [][]float64{{-1}}, B: []float64{1}})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
	// No constraints, positive objective.
	_, err = Solve(Problem{C: []float64{1}})
	if !errors.Is(err, ErrUnbounded) {
		t.Errorf("err = %v, want ErrUnbounded", err)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and -x <= -3 (x >= 3): infeasible.
	_, err := Solve(Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -3},
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestNegativeRHSFeasible(t *testing.T) {
	// -x <= -2 (x>=2), x <= 5, max -x -> x=2, value -2.
	sol, err := Solve(Problem{
		C: []float64{-1},
		A: [][]float64{{-1}, {1}},
		B: []float64{-2, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2) || !approx(sol.Value, -2) {
		t.Errorf("sol = %+v, want x=2", sol)
	}
}

func TestEqualityViaPair(t *testing.T) {
	// x+y = 3 expressed as <= and >=; max x s.t. x<=2.
	sol, err := Solve(Problem{
		C: []float64{1, 0},
		A: [][]float64{{1, 1}, {-1, -1}, {1, 0}},
		B: []float64{3, -3, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2) || !approx(sol.X[1], 1) {
		t.Errorf("sol = %+v, want (2,1)", sol)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Classic degenerate problem; Bland's rule must terminate.
	sol, err := Solve(Problem{
		C: []float64{10, -57, -9, -24},
		A: [][]float64{
			{0.5, -5.5, -2.5, 9},
			{0.5, -1.5, -0.5, 1},
			{1, 0, 0, 0},
		},
		B: []float64{0, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.Value, 1) {
		t.Errorf("value = %v, want 1", sol.Value)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}).Validate(); err == nil {
		t.Error("want dimension error")
	}
	if err := (&Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}}).Validate(); err == nil {
		t.Error("want row-count error")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}); err == nil {
		t.Error("Solve must reject invalid problems")
	}
}

// TestMarginalThroughputShape mirrors the Placer's LP: maximize sum of
// marginals x_i with per-chain caps and a shared link.
func TestMarginalThroughputShape(t *testing.T) {
	// Two chains: x0 <= 10, x1 <= 20, and x0 + 2*x1 <= 24 (chain 1 crosses
	// the link twice). Optimum: x0=10, x1=7.
	sol, err := Solve(Problem{
		C: []float64{1, 1},
		A: [][]float64{{1, 0}, {0, 1}, {1, 2}},
		B: []float64{10, 20, 24},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 10) || !approx(sol.X[1], 7) {
		t.Errorf("sol = %+v, want (10,7)", sol)
	}
}

// TestRandomLPsFeasibleBoundedProperty: for random problems with
// non-negative A and b, origin is feasible and the optimum is >= 0 and
// respects all constraints.
func TestRandomLPsFeasibleBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		n, m := 1+rng.Intn(5), 1+rng.Intn(6)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := range p.C {
			p.C[j] = rng.Float64()*4 - 1
		}
		for i := range p.A {
			p.A[i] = make([]float64, n)
			for j := range p.A[i] {
				p.A[i][j] = rng.Float64() // >= 0
			}
			p.B[i] = rng.Float64() * 10
		}
		// Add x_j <= 100 rows so positives can't be unbounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 100)
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		if sol.Value < -1e-9 {
			return false // origin gives 0
		}
		for i, row := range p.A {
			lhs := 0.0
			for j := range row {
				lhs += row[j] * sol.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMILPKnapsack(t *testing.T) {
	// max 8a+11b+6c+4d, 5a+7b+4c+3d <= 14, vars in [0,1] integer.
	n := 4
	p := Problem{
		C: []float64{8, 11, 6, 4},
		A: [][]float64{{5, 7, 4, 3}},
		B: []float64{14},
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		p.A = append(p.A, row)
		p.B = append(p.B, 1)
	}
	sol, err := SolveMILP(p, []bool{true, true, true, true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: b,c,d = 21 (7+4+3=14).
	if !approx(sol.Value, 21) {
		t.Errorf("value = %v, want 21 (x=%v)", sol.Value, sol.X)
	}
	for _, x := range sol.X {
		if !approx(x, math.Round(x)) {
			t.Errorf("non-integral solution %v", sol.X)
		}
	}
}

func TestMILPMixed(t *testing.T) {
	// max x + 10y, x <= 2.5 (continuous), y <= 1.8 (integer) -> x=2.5, y=1.
	p := Problem{
		C: []float64{1, 10},
		A: [][]float64{{1, 0}, {0, 1}},
		B: []float64{2.5, 1.8},
	}
	sol, err := SolveMILP(p, []bool{false, true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(sol.X[0], 2.5) || !approx(sol.X[1], 1) {
		t.Errorf("sol = %+v, want (2.5, 1)", sol)
	}
}

func TestMILPInfeasible(t *testing.T) {
	// 0.4 <= x <= 0.6, x integer: infeasible.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{0.6, -0.4},
	}
	if _, err := SolveMILP(p, []bool{true}, 0); !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func BenchmarkSolve20x30(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n, m := 20, 30
	p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
	for j := range p.C {
		p.C[j] = rng.Float64()
	}
	for i := range p.A {
		p.A[i] = make([]float64, n)
		for j := range p.A[i] {
			p.A[i][j] = rng.Float64()
		}
		p.B[i] = 5 + rng.Float64()*10
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
