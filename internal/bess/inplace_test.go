package bess

import (
	"bytes"
	"testing"

	"lemur/internal/nf"
)

// TestProcessFrameInPlaceMatches: the in-place fast path (DecapShift/
// EncapShift over the pooled buffer) must emit exactly the bytes of the
// allocating ProcessFrame, including across stateful NFs, for a stream of
// frames. Two pipelines so NF state evolves identically on each side.
func TestProcessFrameInPlaceMatches(t *testing.T) {
	mk := func() *Pipeline {
		pl := NewPipeline(server())
		sg := mkSub(t, "sg0", "Monitor", "Encrypt", "IPv4Fwd")
		if err := pl.Add(sg); err != nil {
			t.Fatal(err)
		}
		return pl
	}
	ref, fast := mk(), mk()
	env := &nf.Env{}
	for i := 0; i < 50; i++ {
		in := encFrame(t, 1, 10, uint16(80+i%5))
		want, err := ref.ProcessFrame(append([]byte(nil), in...), env)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fast.ProcessFrameInPlace(append([]byte(nil), in...), env)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: in-place output diverges from ProcessFrame", i)
		}
	}
}

// TestProcessFrameInPlaceDrop: drops behave identically on both paths.
func TestProcessFrameInPlaceDrop(t *testing.T) {
	pl := NewPipeline(server())
	sg := mkSub(t, "sg0", "ACL") // synthetic rules don't admit 172.16/12
	if err := pl.Add(sg); err != nil {
		t.Fatal(err)
	}
	out, err := pl.ProcessFrameInPlace(encFrame(t, 1, 10, 80), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("dropped packet must return nil frame")
	}
}

// TestPathBindingsSorted: the simulator's dense index builder relies on
// PathBindings enumerating installed paths in deterministic (SPI, SI) order.
func TestPathBindingsSorted(t *testing.T) {
	pl := NewPipeline(server())
	for _, e := range []struct {
		name string
		spi  uint32
		si   uint8
	}{{"c", 3, 4}, {"a", 1, 9}, {"b", 1, 2}} {
		sg := mkSub(t, e.name)
		sg.SPI, sg.EntrySI = e.spi, e.si
		sg.Shares = []CoreShare{{Core: 1, Fraction: 0.3}}
		if err := pl.Add(sg); err != nil {
			t.Fatal(err)
		}
	}
	bs := pl.PathBindings()
	if len(bs) != 3 {
		t.Fatalf("got %d bindings, want 3", len(bs))
	}
	wantOrder := []string{"b", "a", "c"} // (1,2), (1,9), (3,4)
	for i, b := range bs {
		if b.Sub.Name != wantOrder[i] {
			t.Fatalf("binding %d = %s (SPI %d SI %d), want %s", i, b.Sub.Name, b.SPI, b.SI, wantOrder[i])
		}
	}
}
