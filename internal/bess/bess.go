// Package bess simulates the BESS software dataplane on a commodity server:
// an NSH demultiplexer pulling from the NIC, run-to-completion NF subgroups
// pinned to cores, an NSH re-encapsulating multiplexer, and the per-core
// hierarchical scheduler the meta-compiler programs (§4.2, §A.1).
//
// Functionally, ProcessFrame executes real NF code over real frames. For
// capacity, a subgroup's throughput follows the paper's model: k cores at
// clock f running a subgroup whose per-packet cost is c yields k·f/c packets
// per second.
package bess

import (
	"errors"
	"fmt"
	"sort"

	"lemur/internal/bpf"
	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/nsh"
	"lemur/internal/obs"
	"lemur/internal/packet"
)

// CoreShare allocates a fraction of one core to a subgroup; the paper's
// scheduler round-robins subgroups that share a core.
type CoreShare struct {
	Core     int
	Fraction float64 // (0, 1]
}

// Branch re-tags packets leaving a subgroup at a branch point. Filtered
// branches match explicitly; filterless ones split remaining traffic per
// flow hash in proportion to Weight.
type Branch struct {
	Filter *bpf.Filter
	Weight float64
	SPI    uint32
	SI     uint8
}

// pickBranch mirrors the PISA switch's branch selection: filtered branches
// first in order, then a stable per-flow weighted choice among filterless
// ones. Two passes over the (short) branch list keep it allocation-free.
func pickBranch(branches []Branch, p *packet.Packet) *Branch {
	var totalW float64
	weightless := 0
	for i := range branches {
		b := &branches[i]
		if b.Filter != nil {
			if b.Filter.Match(p) {
				return b
			}
			continue
		}
		weightless++
		totalW += b.Weight
	}
	if weightless == 0 {
		return nil
	}
	var u float64
	if tu, err := p.Tuple(); err == nil {
		u = float64(tu.Hash()%100000) / 100000
	}
	if totalW <= 0 {
		idx := int(u*float64(weightless)) % weightless
		for i := range branches {
			if branches[i].Filter != nil {
				continue
			}
			if idx == 0 {
				return &branches[i]
			}
			idx--
		}
	}
	acc := 0.0
	var last *Branch
	for i := range branches {
		b := &branches[i]
		if b.Filter != nil {
			continue
		}
		acc += b.Weight / totalW
		if u < acc {
			return b
		}
		last = b
	}
	return last
}

// Subgroup is a run-to-completion group of server-placed NFs: one packet
// batch is fully processed by every NF in the group before the next batch,
// giving zero-copy transfer, no scheduling overhead, and no cross-core
// communication (§3.2).
type Subgroup struct {
	Name      string
	NFs       []nf.NF
	SPI       uint32
	EntrySI   uint8 // packets tagged (SPI, EntrySI) enter this subgroup
	AdvanceSI uint8 // SI decrement applied by the mux on exit
	Branches  []Branch

	// CyclesPerPkt is the profiled per-packet cost of the whole subgroup
	// including coordination overheads (NSH decap/encap, demux steering).
	CyclesPerPkt float64

	// CrossSocket marks subgroups scheduled off the NIC's socket; their
	// effective cost carries the NUMA penalty.
	CrossSocket bool

	Shares []CoreShare

	// Processed counts packets run through the subgroup.
	Processed uint64
}

// TotalCores returns the fractional core allocation.
func (sg *Subgroup) TotalCores() float64 {
	total := 0.0
	for _, s := range sg.Shares {
		total += s.Fraction
	}
	return total
}

// CapacityPPS is the paper's throughput model: allocated cores × f / c.
func (sg *Subgroup) CapacityPPS(clockHz, crossSocketPenalty float64) float64 {
	c := sg.CyclesPerPkt
	if c <= 0 {
		return 0
	}
	if sg.CrossSocket {
		c *= crossSocketPenalty
	}
	return sg.TotalCores() * clockHz / c
}

var (
	mFrames = obs.C("lemur_frames_total", obs.L("platform", "server"))
	mDrops  = obs.C("lemur_frame_drops_total", obs.L("platform", "server"))
)

// Pipeline is the per-server dataplane: demux, subgroups, mux.
type Pipeline struct {
	Server  *hw.ServerSpec
	entries map[uint64]*Subgroup
	groups  []*Subgroup

	// scratch is the decode buffer for ProcessFrameInPlace: keeping it on
	// the pipeline (rather than on the stack under an interface call) makes
	// the in-place path allocation-free. Pipelines are single-goroutine
	// objects, like the per-deployment simulator that drives them.
	scratch packet.Packet
}

// PathBinding is one installed (SPI, SI) → subgroup mapping.
type PathBinding struct {
	SPI uint32
	SI  uint8
	Sub *Subgroup
}

// PathBindings returns the installed service-path bindings sorted by
// (SPI, SI), letting callers build dense dispatch tables without reaching
// into the pipeline's internals.
func (pl *Pipeline) PathBindings() []PathBinding {
	out := make([]PathBinding, 0, len(pl.entries))
	for k, sg := range pl.entries {
		out = append(out, PathBinding{SPI: uint32(k >> 8), SI: uint8(k), Sub: sg})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SPI != out[j].SPI {
			return out[i].SPI < out[j].SPI
		}
		return out[i].SI < out[j].SI
	})
	return out
}

// NewPipeline builds an empty pipeline for the server.
func NewPipeline(server *hw.ServerSpec) *Pipeline {
	return &Pipeline{Server: server, entries: make(map[uint64]*Subgroup)}
}

func pathKey(spi uint32, si uint8) uint64 { return uint64(spi)<<8 | uint64(si) }

// Pipeline errors.
var (
	ErrDuplicatePath = errors.New("bess: duplicate (SPI, SI) subgroup")
	ErrNoSubgroup    = errors.New("bess: no subgroup for service path")
	ErrOversubscribe = errors.New("bess: core oversubscribed")
)

// Add installs a subgroup, validating core indices and share budgets.
func (pl *Pipeline) Add(sg *Subgroup) error {
	k := pathKey(sg.SPI, sg.EntrySI)
	if _, dup := pl.entries[k]; dup {
		return fmt.Errorf("%w: spi=%d si=%d", ErrDuplicatePath, sg.SPI, sg.EntrySI)
	}
	for _, s := range sg.Shares {
		if s.Core < 0 || s.Core >= pl.Server.TotalCores() {
			return fmt.Errorf("bess: subgroup %s: core %d out of range (server has %d)",
				sg.Name, s.Core, pl.Server.TotalCores())
		}
		if s.Fraction <= 0 || s.Fraction > 1 {
			return fmt.Errorf("bess: subgroup %s: share %v out of (0,1]", sg.Name, s.Fraction)
		}
	}
	pl.entries[k] = sg
	pl.groups = append(pl.groups, sg)
	if load := pl.CoreLoad(); true {
		for core, f := range load {
			if f > 1+1e-9 {
				// Roll back.
				delete(pl.entries, k)
				pl.groups = pl.groups[:len(pl.groups)-1]
				return fmt.Errorf("%w: core %d at %.2f", ErrOversubscribe, core, f)
			}
		}
	}
	return nil
}

// Subgroups returns the installed subgroups in insertion order.
func (pl *Pipeline) Subgroups() []*Subgroup { return pl.groups }

// RemoveSPIRange uninstalls every subgroup whose SPI lies in [lo, hi] and
// returns the removed subgroups in their former insertion order. Chains own
// disjoint SPI ranges, so a failover rewire retracts exactly one chain's
// subgroups (freeing their core shares) without disturbing the rest of the
// pipeline.
func (pl *Pipeline) RemoveSPIRange(lo, hi uint32) []*Subgroup {
	var removed []*Subgroup
	kept := pl.groups[:0]
	for _, sg := range pl.groups {
		if sg.SPI >= lo && sg.SPI <= hi {
			delete(pl.entries, pathKey(sg.SPI, sg.EntrySI))
			removed = append(removed, sg)
			continue
		}
		kept = append(kept, sg)
	}
	pl.groups = kept
	return removed
}

// SubgroupFor returns the subgroup serving (spi, si), or nil — used by the
// discrete-time simulator to charge the right queue before processing.
func (pl *Pipeline) SubgroupFor(spi uint32, si uint8) *Subgroup {
	return pl.entries[pathKey(spi, si)]
}

// CoreLoad sums allocated fractions per core.
func (pl *Pipeline) CoreLoad() map[int]float64 {
	load := make(map[int]float64)
	for _, sg := range pl.groups {
		for _, s := range sg.Shares {
			load[s.Core] += s.Fraction
		}
	}
	return load
}

// ProcessFrame is the full server path for one frame arriving from the
// switch: the shared demux decapsulates NSH and steers by (SPI, SI), the
// subgroup's NFs run to completion, and the mux re-encapsulates with the
// advanced (or branch-retagged) service index. The returned frame goes back
// to the ToR. A nil frame with nil error means the chain dropped the packet.
// The input frame is never mutated.
func (pl *Pipeline) ProcessFrame(frame []byte, env *nf.Env) ([]byte, error) {
	var p packet.Packet
	return pl.process(frame, env, &p, false)
}

// ProcessFrameInPlace is ProcessFrame for the simulator's zero-allocation
// fast path: the demux/mux shift the L2 header over the NSH slot inside
// frame's own backing array (nsh.DecapShift/EncapShift), so a server hop
// whose NFs rewrite the packet in place performs no allocation and no
// payload copy. The returned frame aliases the input unless an NF replaced
// the packet buffer, in which case it falls back to an allocating encap.
func (pl *Pipeline) ProcessFrameInPlace(frame []byte, env *nf.Env) ([]byte, error) {
	return pl.process(frame, env, &pl.scratch, true)
}

func (pl *Pipeline) process(frame []byte, env *nf.Env, p *packet.Packet, inPlace bool) (out []byte, rerr error) {
	mFrames.Inc()
	defer func() {
		if out == nil {
			mDrops.Inc()
		}
	}()
	var inner []byte
	var spi uint32
	var si uint8
	var err error
	if inPlace {
		inner, spi, si, err = nsh.DecapShift(frame)
	} else {
		inner, spi, si, err = nsh.Decap(frame)
	}
	if err != nil {
		return nil, fmt.Errorf("bess: demux: %w", err)
	}
	sg, ok := pl.entries[pathKey(spi, si)]
	if !ok {
		return nil, fmt.Errorf("%w: spi=%d si=%d", ErrNoSubgroup, spi, si)
	}
	if err := p.Decode(inner); err != nil {
		return nil, fmt.Errorf("bess: %w", err)
	}
	for _, fn := range sg.NFs {
		fn.Process(p, env)
		if p.Drop {
			sg.Processed++
			return nil, nil
		}
	}
	p.SyncHeaders()
	sg.Processed++

	outSPI, outSI := spi, si-sg.AdvanceSI
	if si < sg.AdvanceSI {
		return nil, fmt.Errorf("bess: subgroup %s: SI underflow (si=%d advance=%d)",
			sg.Name, si, sg.AdvanceSI)
	}
	if b := pickBranch(sg.Branches, p); b != nil {
		outSPI, outSI = b.SPI, b.SI
	}
	if inPlace && len(p.Data) == len(inner) && &p.Data[0] == &inner[0] {
		if err := nsh.EncapShift(frame, outSPI, outSI); err != nil {
			return nil, err
		}
		return frame, nil
	}
	return nsh.Encap(p.Data, outSPI, outSI)
}
