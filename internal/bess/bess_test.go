package bess

import (
	"errors"
	"math"
	"strings"
	"testing"

	"lemur/internal/bpf"
	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/nsh"
	"lemur/internal/packet"
)

func server() *hw.ServerSpec { return hw.NewPaperTestbed().Servers[0] }

func frame(dport uint16) []byte {
	return packet.Builder{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{172, 16, 0, 1},
		SrcPort: 4000, DstPort: dport, Payload: []byte("payload-bytes!!!"),
	}.Build()
}

func encFrame(t *testing.T, spi uint32, si uint8, dport uint16) []byte {
	t.Helper()
	out, err := nsh.Encap(frame(dport), spi, si)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mkSub(t *testing.T, name string, classes ...string) *Subgroup {
	t.Helper()
	sg := &Subgroup{Name: name, SPI: 1, EntrySI: 10, AdvanceSI: 2, CyclesPerPkt: 1000,
		Shares: []CoreShare{{Core: 1, Fraction: 1}}}
	for i, c := range classes {
		inst, err := nf.New(c, name+"-"+c+string(rune('0'+i)), nil)
		if err != nil {
			t.Fatal(err)
		}
		sg.NFs = append(sg.NFs, inst)
	}
	return sg
}

func TestPipelineProcessFrame(t *testing.T) {
	pl := NewPipeline(server())
	sg := mkSub(t, "sg0", "Monitor", "IPv4Fwd")
	if err := pl.Add(sg); err != nil {
		t.Fatal(err)
	}
	out, err := pl.ProcessFrame(encFrame(t, 1, 10, 80), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	spi, si, err := nsh.Tag(out)
	if err != nil || spi != 1 || si != 8 {
		t.Fatalf("out tag = %d/%d, %v (want 1/8)", spi, si, err)
	}
	if sg.Processed != 1 {
		t.Errorf("Processed = %d", sg.Processed)
	}
	mon := sg.NFs[0].(*nf.Monitor)
	if mon.NumFlows() != 1 {
		t.Errorf("monitor saw %d flows, want 1", mon.NumFlows())
	}
}

func TestPipelineDrop(t *testing.T) {
	pl := NewPipeline(server())
	sg := mkSub(t, "sg0", "ACL") // default synthetic rules won't match 172.16/12 dst
	if err := pl.Add(sg); err != nil {
		t.Fatal(err)
	}
	out, err := pl.ProcessFrame(encFrame(t, 1, 10, 80), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("dropped packet must return nil frame")
	}
}

func TestPipelineErrors(t *testing.T) {
	pl := NewPipeline(server())
	if _, err := pl.ProcessFrame(frame(80), &nf.Env{}); err == nil {
		t.Error("untagged frame must fail demux")
	}
	if _, err := pl.ProcessFrame(encFrame(t, 5, 5, 80), &nf.Env{}); !errors.Is(err, ErrNoSubgroup) {
		t.Errorf("unknown path: %v", err)
	}
	sg := mkSub(t, "sg0")
	if err := pl.Add(sg); err != nil {
		t.Fatal(err)
	}
	dup := mkSub(t, "sg1")
	if err := pl.Add(dup); !errors.Is(err, ErrDuplicatePath) {
		t.Errorf("dup path: %v", err)
	}
	bad := mkSub(t, "sg2")
	bad.SPI = 2
	bad.Shares = []CoreShare{{Core: 99, Fraction: 1}}
	if err := pl.Add(bad); err == nil {
		t.Error("core out of range must fail")
	}
	bad.Shares = []CoreShare{{Core: 1, Fraction: 1.5}}
	if err := pl.Add(bad); err == nil {
		t.Error("fraction > 1 must fail")
	}
}

func TestCoreOversubscription(t *testing.T) {
	pl := NewPipeline(server())
	a := mkSub(t, "a")
	a.Shares = []CoreShare{{Core: 2, Fraction: 0.7}}
	if err := pl.Add(a); err != nil {
		t.Fatal(err)
	}
	b := mkSub(t, "b")
	b.SPI = 2
	b.Shares = []CoreShare{{Core: 2, Fraction: 0.5}}
	if err := pl.Add(b); !errors.Is(err, ErrOversubscribe) {
		t.Errorf("err = %v, want ErrOversubscribe", err)
	}
	// Rollback: pipeline still has only subgroup a and path 2/10 is free.
	if len(pl.Subgroups()) != 1 {
		t.Errorf("rollback failed: %d subgroups", len(pl.Subgroups()))
	}
	b.Shares = []CoreShare{{Core: 2, Fraction: 0.3}}
	if err := pl.Add(b); err != nil {
		t.Errorf("exactly-full core should fit: %v", err)
	}
	if load := pl.CoreLoad()[2]; math.Abs(load-1.0) > 1e-9 {
		t.Errorf("core 2 load = %v", load)
	}
}

func TestSIUnderflow(t *testing.T) {
	pl := NewPipeline(server())
	sg := mkSub(t, "sg0")
	sg.EntrySI = 1
	sg.AdvanceSI = 5
	if err := pl.Add(sg); err != nil {
		t.Fatal(err)
	}
	if _, err := pl.ProcessFrame(encFrame(t, 1, 1, 80), &nf.Env{}); err == nil {
		t.Error("SI underflow must error")
	}
}

func TestBranchReTag(t *testing.T) {
	pl := NewPipeline(server())
	sg := mkSub(t, "sg0")
	sg.Branches = []Branch{
		{Filter: bpf.MustCompile("udp.dport == 53"), SPI: 30, SI: 4},
		{Filter: nil, SPI: 31, SI: 4},
	}
	if err := pl.Add(sg); err != nil {
		t.Fatal(err)
	}
	out, err := pl.ProcessFrame(encFrame(t, 1, 10, 53), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	spi, si, _ := nsh.Tag(out)
	if spi != 30 || si != 4 {
		t.Errorf("branch tag = %d/%d, want 30/4", spi, si)
	}
	out2, _ := pl.ProcessFrame(encFrame(t, 1, 10, 80), &nf.Env{})
	spi2, _, _ := nsh.Tag(out2)
	if spi2 != 31 {
		t.Errorf("default branch = %d, want 31", spi2)
	}
}

func TestCapacityModel(t *testing.T) {
	sg := &Subgroup{CyclesPerPkt: 1700, Shares: []CoreShare{{Core: 0, Fraction: 1}, {Core: 1, Fraction: 1}}}
	// 2 cores * 1.7e9 / 1700 = 2e6 pps.
	if got := sg.CapacityPPS(1.7e9, 1.06); math.Abs(got-2e6) > 1 {
		t.Errorf("capacity = %v, want 2e6", got)
	}
	sg.CrossSocket = true
	cross := sg.CapacityPPS(1.7e9, 1.06)
	if math.Abs(cross-2e6/1.06) > 1 {
		t.Errorf("cross-socket capacity = %v, want %v", cross, 2e6/1.06)
	}
	if (&Subgroup{}).CapacityPPS(1.7e9, 1) != 0 {
		t.Error("zero-cost subgroup must report zero capacity, not infinity")
	}
	half := &Subgroup{CyclesPerPkt: 1700, Shares: []CoreShare{{Core: 0, Fraction: 0.5}}}
	if got := half.CapacityPPS(1.7e9, 1); math.Abs(got-0.5e6) > 1 {
		t.Errorf("fractional share capacity = %v", got)
	}
}

func TestSchedulerTrees(t *testing.T) {
	pl := NewPipeline(server())
	a := mkSub(t, "a")
	a.Shares = []CoreShare{{Core: 1, Fraction: 0.5}}
	b := mkSub(t, "b")
	b.SPI = 2
	b.Shares = []CoreShare{{Core: 1, Fraction: 0.5}, {Core: 2, Fraction: 1}}
	if err := pl.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := pl.Add(b); err != nil {
		t.Fatal(err)
	}
	scheds := BuildSchedulers(pl, map[string]float64{"b": 1e9})
	if len(scheds) != 2 {
		t.Fatalf("schedulers = %d, want 2 (cores 1,2)", len(scheds))
	}
	if scheds[0].Core != 1 || scheds[1].Core != 2 {
		t.Errorf("cores = %d,%d", scheds[0].Core, scheds[1].Core)
	}
	// Core 1 round-robins a and b; b is rate-limited.
	root := scheds[0].Root
	if root.Kind != RoundRobin || len(root.Children) != 2 {
		t.Fatalf("core 1 root = %+v", root)
	}
	// RR alternation.
	first := root.NextLeaf().Subgroup.Name
	second := root.NextLeaf().Subgroup.Name
	third := root.NextLeaf().Subgroup.Name
	if first == second || first != third {
		t.Errorf("rr order: %s %s %s", first, second, third)
	}
	// Rendering mentions the rate limit.
	if s := scheds[0].String(); !strings.Contains(s, "rate_limit") || !strings.Contains(s, "subgroup a") {
		t.Errorf("render:\n%s", s)
	}
	if (&SchedNode{Kind: RoundRobin}).NextLeaf() != nil {
		t.Error("empty tree must return nil")
	}
}

// TestSchedulerTreesEDF: a core hosting a deadline-bearing subgroup gets a
// Deadline root ordered by ascending slack (deadline-free residents last,
// name-ordered); cores with no deadline resident keep round-robin verbatim;
// and nil slack input reproduces BuildSchedulers exactly.
func TestSchedulerTreesEDF(t *testing.T) {
	pl := NewPipeline(server())
	a := mkSub(t, "a") // core 1, slack 30us
	a.Shares = []CoreShare{{Core: 1, Fraction: 0.25}}
	b := mkSub(t, "b") // cores 1+2, slack 10us (most urgent)
	b.SPI = 2
	b.Shares = []CoreShare{{Core: 1, Fraction: 0.25}, {Core: 2, Fraction: 1}}
	c := mkSub(t, "c") // core 1, no deadline
	c.SPI = 3
	c.Shares = []CoreShare{{Core: 1, Fraction: 0.5}}
	d := mkSub(t, "d") // core 3 alone, no deadline: stays round-robin
	d.SPI = 4
	d.Shares = []CoreShare{{Core: 3, Fraction: 1}}
	for _, sg := range []*Subgroup{a, b, c, d} {
		if err := pl.Add(sg); err != nil {
			t.Fatal(err)
		}
	}
	slack := map[string]float64{"a": 30e-6, "b": 10e-6}
	scheds := BuildSchedulersEDF(pl, map[string]float64{"b": 1e9}, slack)
	if len(scheds) != 3 {
		t.Fatalf("schedulers = %d, want 3 (cores 1,2,3)", len(scheds))
	}
	// Core 1: Deadline root, b (slack 10us, rate-limited) before a (30us),
	// deadline-free c last.
	root := scheds[0].Root
	if root.Kind != Deadline || len(root.Children) != 3 {
		t.Fatalf("core 1 root = %+v", root)
	}
	if root.Children[0].Kind != RateLimit || !root.Children[0].HasSlack ||
		root.Children[0].Children[0].Subgroup.Name != "b" {
		t.Errorf("core 1 first child = %+v", root.Children[0])
	}
	if root.Children[1].Subgroup.Name != "a" || root.Children[2].Subgroup.Name != "c" {
		t.Errorf("core 1 order = %s, %s (want a, c)",
			root.Children[1].Subgroup.Name, root.Children[2].Subgroup.Name)
	}
	if root.Children[2].HasSlack {
		t.Error("deadline-free subgroup c must not carry slack")
	}
	// Strict priority: NextLeaf always returns the most urgent child.
	if got := root.NextLeaf().Subgroup.Name; got != "b" {
		t.Errorf("NextLeaf = %s, want b", got)
	}
	if got := root.NextLeaf().Subgroup.Name; got != "b" {
		t.Errorf("second NextLeaf = %s, want b (strict priority)", got)
	}
	// Core 2 hosts only b (deadline-bearing) -> Deadline root too.
	if scheds[1].Root.Kind != Deadline {
		t.Errorf("core 2 root kind = %v, want Deadline", scheds[1].Root.Kind)
	}
	// Core 3 hosts only deadline-free d -> round-robin verbatim.
	if scheds[2].Root.Kind != RoundRobin {
		t.Errorf("core 3 root kind = %v, want RoundRobin", scheds[2].Root.Kind)
	}
	// Rendering shows the policy and per-leaf slack.
	s := scheds[0].String()
	if !strings.Contains(s, "deadline_edf") || !strings.Contains(s, "subgroup b slack 10.0us") ||
		!strings.Contains(s, "subgroup c\n") {
		t.Errorf("render:\n%s", s)
	}
	if (&SchedNode{Kind: Deadline}).NextLeaf() != nil {
		t.Error("empty deadline tree must return nil")
	}

	// Deadline-free identity: nil slack reproduces BuildSchedulers output
	// byte-for-byte.
	plain := BuildSchedulers(pl, map[string]float64{"b": 1e9})
	viaEDF := BuildSchedulersEDF(pl, map[string]float64{"b": 1e9}, nil)
	if len(plain) != len(viaEDF) {
		t.Fatalf("tree count %d vs %d", len(plain), len(viaEDF))
	}
	for i := range plain {
		if plain[i].String() != viaEDF[i].String() {
			t.Errorf("core %d trees diverge without deadlines:\n%s\nvs\n%s",
				plain[i].Core, plain[i].String(), viaEDF[i].String())
		}
	}
}
