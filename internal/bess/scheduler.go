package bess

import (
	"fmt"
	"sort"
	"strings"
)

// The paper (§A.1.3) uses BESS's hierarchical scheduler: a per-core tree of
// logical interior nodes (policies) and physical leaves (subgroup
// instances). The meta-compiler emits one round-robin root per core over the
// subgroups sharing it, with rate-limit nodes enforcing t_max.

// NodeKind classifies scheduler tree nodes.
type NodeKind int

// Scheduler node kinds.
const (
	RoundRobin NodeKind = iota
	RateLimit
	Leaf
)

// SchedNode is one node of a per-core scheduler tree.
type SchedNode struct {
	Kind     NodeKind
	RateBps  float64 // RateLimit only
	Subgroup *Subgroup
	Children []*SchedNode

	rrNext int // round-robin cursor
}

// CoreScheduler is the tree for one core.
type CoreScheduler struct {
	Core int
	Root *SchedNode
}

// BuildSchedulers derives per-core scheduler trees from the pipeline's core
// shares: each used core gets a round-robin root over the subgroups sharing
// it; subgroups with a rate cap get a RateLimit interposed.
// rateCaps maps subgroup name -> bps cap (0/absent = uncapped).
func BuildSchedulers(pl *Pipeline, rateCaps map[string]float64) []CoreScheduler {
	byCore := make(map[int][]*Subgroup)
	for _, sg := range pl.Subgroups() {
		for _, s := range sg.Shares {
			byCore[s.Core] = append(byCore[s.Core], sg)
		}
	}
	cores := make([]int, 0, len(byCore))
	for c := range byCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)

	var out []CoreScheduler
	for _, c := range cores {
		root := &SchedNode{Kind: RoundRobin}
		for _, sg := range byCore[c] {
			leaf := &SchedNode{Kind: Leaf, Subgroup: sg}
			if cap, ok := rateCaps[sg.Name]; ok && cap > 0 {
				root.Children = append(root.Children,
					&SchedNode{Kind: RateLimit, RateBps: cap, Children: []*SchedNode{leaf}})
			} else {
				root.Children = append(root.Children, leaf)
			}
		}
		out = append(out, CoreScheduler{Core: c, Root: root})
	}
	return out
}

// NextLeaf advances the round-robin cursors and returns the next runnable
// subgroup leaf, or nil for an empty tree.
func (n *SchedNode) NextLeaf() *SchedNode {
	switch n.Kind {
	case Leaf:
		return n
	case RateLimit:
		if len(n.Children) == 0 {
			return nil
		}
		return n.Children[0].NextLeaf()
	default: // RoundRobin
		if len(n.Children) == 0 {
			return nil
		}
		child := n.Children[n.rrNext%len(n.Children)]
		n.rrNext++
		return child.NextLeaf()
	}
}

// String renders the tree in tc-like indentation, matching what the
// generated BESS script describes.
func (cs CoreScheduler) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d:\n", cs.Core)
	var walk func(n *SchedNode, depth int)
	walk = func(n *SchedNode, depth int) {
		indent := strings.Repeat("  ", depth+1)
		switch n.Kind {
		case RoundRobin:
			fmt.Fprintf(&b, "%sround_robin\n", indent)
		case RateLimit:
			fmt.Fprintf(&b, "%srate_limit %.0f bps\n", indent, n.RateBps)
		case Leaf:
			fmt.Fprintf(&b, "%ssubgroup %s\n", indent, n.Subgroup.Name)
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(cs.Root, 0)
	return b.String()
}
