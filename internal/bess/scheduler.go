package bess

import (
	"fmt"
	"sort"
	"strings"
)

// The paper (§A.1.3) uses BESS's hierarchical scheduler: a per-core tree of
// logical interior nodes (policies) and physical leaves (subgroup
// instances). The meta-compiler emits one round-robin root per core over the
// subgroups sharing it, with rate-limit nodes enforcing t_max. Cores hosting
// a chain with a latency deadline get an earliest-deadline-first root
// instead (Wang et al.): children ordered by per-chain slack — the chain's
// d_max minus the best-case delay accumulated upstream of the subgroup — so
// the subgroup closest to blowing its deadline is always served first.

// NodeKind classifies scheduler tree nodes.
type NodeKind int

// Scheduler node kinds.
const (
	RoundRobin NodeKind = iota
	RateLimit
	Leaf
	// Deadline is an earliest-deadline-first policy node: children are
	// ordered by ascending slack (most urgent first), deadline-free
	// children after all deadline-bearing ones.
	Deadline
)

// SchedNode is one node of a per-core scheduler tree.
type SchedNode struct {
	Kind     NodeKind
	RateBps  float64 // RateLimit only
	Subgroup *Subgroup
	Children []*SchedNode

	// SlackSec is the EDF priority of a child of a Deadline node: the
	// owning chain's d_max minus the best-case delay accumulated upstream
	// of this subgroup. Meaningful only when HasSlack is set.
	SlackSec float64
	// HasSlack marks a node whose subgroup belongs to a deadline-bearing
	// chain (zero is a valid slack, so presence needs its own bit).
	HasSlack bool

	rrNext int // round-robin cursor
}

// CoreScheduler is the tree for one core.
type CoreScheduler struct {
	Core int
	Root *SchedNode
}

// BuildSchedulers derives per-core scheduler trees from the pipeline's core
// shares: each used core gets a round-robin root over the subgroups sharing
// it; subgroups with a rate cap get a RateLimit interposed.
// rateCaps maps subgroup name -> bps cap (0/absent = uncapped).
func BuildSchedulers(pl *Pipeline, rateCaps map[string]float64) []CoreScheduler {
	return BuildSchedulersEDF(pl, rateCaps, nil)
}

// BuildSchedulersEDF is BuildSchedulers with per-subgroup deadline slack:
// slackSec maps subgroup name -> slack seconds (chain d_max minus best-case
// upstream delay; absent = the owning chain has no deadline). A core where
// at least one resident subgroup carries slack gets a Deadline root whose
// children are ordered by ascending slack (name as the tie-break), with
// deadline-free residents appended in name order. Cores with no
// deadline-bearing resident keep the round-robin tree verbatim, so a nil or
// empty slackSec reproduces BuildSchedulers exactly.
func BuildSchedulersEDF(pl *Pipeline, rateCaps, slackSec map[string]float64) []CoreScheduler {
	byCore := make(map[int][]*Subgroup)
	for _, sg := range pl.Subgroups() {
		for _, s := range sg.Shares {
			byCore[s.Core] = append(byCore[s.Core], sg)
		}
	}
	cores := make([]int, 0, len(byCore))
	for c := range byCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)

	var out []CoreScheduler
	for _, c := range cores {
		subs := byCore[c]
		hasDeadline := false
		for _, sg := range subs {
			if _, ok := slackSec[sg.Name]; ok {
				hasDeadline = true
				break
			}
		}
		root := &SchedNode{Kind: RoundRobin}
		if hasDeadline {
			root.Kind = Deadline
			subs = append([]*Subgroup(nil), subs...)
			sort.SliceStable(subs, func(i, j int) bool {
				si, iok := slackSec[subs[i].Name]
				sj, jok := slackSec[subs[j].Name]
				if iok != jok {
					return iok // deadline-bearing first
				}
				if iok && si != sj {
					return si < sj // most urgent (least slack) first
				}
				return subs[i].Name < subs[j].Name
			})
		}
		for _, sg := range subs {
			leaf := &SchedNode{Kind: Leaf, Subgroup: sg}
			if s, ok := slackSec[sg.Name]; ok {
				leaf.SlackSec, leaf.HasSlack = s, true
			}
			child := leaf
			if cap, ok := rateCaps[sg.Name]; ok && cap > 0 {
				child = &SchedNode{Kind: RateLimit, RateBps: cap, Children: []*SchedNode{leaf}}
				child.SlackSec, child.HasSlack = leaf.SlackSec, leaf.HasSlack
			}
			root.Children = append(root.Children, child)
		}
		out = append(out, CoreScheduler{Core: c, Root: root})
	}
	return out
}

// NextLeaf advances the round-robin cursors and returns the next runnable
// subgroup leaf, or nil for an empty tree. A Deadline node is strict
// priority: it always descends into its most urgent (first) child — a real
// scheduler falls through to later children only when earlier ones are
// idle, a state this static tree does not track.
func (n *SchedNode) NextLeaf() *SchedNode {
	switch n.Kind {
	case Leaf:
		return n
	case RateLimit, Deadline:
		if len(n.Children) == 0 {
			return nil
		}
		return n.Children[0].NextLeaf()
	default: // RoundRobin
		if len(n.Children) == 0 {
			return nil
		}
		child := n.Children[n.rrNext%len(n.Children)]
		n.rrNext++
		return child.NextLeaf()
	}
}

// String renders the tree in tc-like indentation, matching what the
// generated BESS script describes.
func (cs CoreScheduler) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "core %d:\n", cs.Core)
	var walk func(n *SchedNode, depth int)
	walk = func(n *SchedNode, depth int) {
		indent := strings.Repeat("  ", depth+1)
		switch n.Kind {
		case RoundRobin:
			fmt.Fprintf(&b, "%sround_robin\n", indent)
		case Deadline:
			fmt.Fprintf(&b, "%sdeadline_edf\n", indent)
		case RateLimit:
			fmt.Fprintf(&b, "%srate_limit %.0f bps\n", indent, n.RateBps)
		case Leaf:
			if n.HasSlack {
				fmt.Fprintf(&b, "%ssubgroup %s slack %.1fus\n", indent, n.Subgroup.Name, n.SlackSec*1e6)
			} else {
				fmt.Fprintf(&b, "%ssubgroup %s\n", indent, n.Subgroup.Name)
			}
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(cs.Root, 0)
	return b.String()
}
