package pisa

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lemur/internal/hw"
	"lemur/internal/obs"
)

// The Placer treats Compile as a slow black box and consults it on every
// candidate placement — across schemes, coalescing variants and δ points the
// same switch program recurs thousands of times per sweep (δ only changes
// t_min, never the table list). CompileCache memoizes verdicts behind a
// content key so identical programs compile exactly once per process.
//
// Keys are the canonical serialization of the stage-packing inputs: the
// switch's per-stage budgets plus every table's name, SRAM/TCAM demand and
// dependency list. Two placements that lower to the same logical table list
// therefore share one verdict even when they come from different schemes,
// different δ points, or freshly rebuilt chain graphs.

// CacheStats is a point-in-time view of a cache's effectiveness.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// verdict is one memoized compile outcome: everything needed to reconstruct
// Compile's (*Binary, error) return without re-packing.
type verdict struct {
	stageOf  []int  // nil when the compile failed before producing a layout
	stages   int    // needed stages (valid whenever stageOf != nil)
	have     int    // the spec's stage budget, for overflow reconstruction
	overflow bool   // ErrStageOverflow (Binary still attached)
	errMsg   string // non-overflow failure text ("" = success)
}

// binary materializes a fresh Binary so callers can never corrupt the cached
// layout.
func (v *verdict) binary() *Binary {
	if v.stageOf == nil {
		return nil
	}
	return &Binary{StageOf: append([]int(nil), v.stageOf...), Stages: v.stages}
}

func (v *verdict) err() error {
	switch {
	case v.overflow:
		return fmt.Errorf("%w: needs %d stages, switch has %d", ErrStageOverflow, v.stages, v.have)
	case v.errMsg != "":
		return errors.New(v.errMsg)
	default:
		return nil
	}
}

// CompileCache is a goroutine-safe, bounded memo table over Compile. The
// zero value is not usable; call NewCompileCache.
type CompileCache struct {
	mu sync.Mutex
	m  map[string]*verdict
	// capEntries bounds the map; on overflow the whole generation is flushed
	// (deterministic and O(1) amortized, unlike LRU bookkeeping on the hot
	// path). A δ sweep's working set is far below the default cap, so
	// flushes only fire on pathological workloads.
	capEntries int

	hits, misses, evictions atomic.Uint64
}

// DefaultCacheEntries bounds the shared cache. Verdict entries are small
// (key bytes dominate at a few hundred bytes each), so 64k entries stay in
// the tens of MB even for adversarial workloads.
const DefaultCacheEntries = 65536

// NewCompileCache builds an empty cache bounded to capEntries (<=0 means
// DefaultCacheEntries).
func NewCompileCache(capEntries int) *CompileCache {
	if capEntries <= 0 {
		capEntries = DefaultCacheEntries
	}
	return &CompileCache{m: make(map[string]*verdict), capEntries: capEntries}
}

// Hoisted metric handles (one atomic branch + add each; see internal/obs).
var (
	mCacheHit   = obs.C("lemur_pisa_compile_cache_total", obs.L("result", "hit"))
	mCacheMiss  = obs.C("lemur_pisa_compile_cache_total", obs.L("result", "miss"))
	mCacheEvict = obs.C("lemur_pisa_compile_cache_evictions_total")
)

// Compile returns the memoized verdict for (spec, tables), packing the
// program on first sight. Concurrent misses on the same key may compile the
// program more than once; verdicts are content-determined, so whichever
// insert wins the race stores the identical outcome.
func (c *CompileCache) Compile(spec *hw.PISASpec, tables []LogicalTable) (*Binary, error) {
	key := cacheKey(spec, tables)

	c.mu.Lock()
	v := c.m[key]
	c.mu.Unlock()
	if v != nil {
		c.hits.Add(1)
		mCacheHit.Inc()
		return v.binary(), v.err()
	}
	c.misses.Add(1)
	mCacheMiss.Inc()

	bin, err := Compile(spec, tables)
	v = &verdict{have: spec.Stages}
	if bin != nil {
		v.stageOf = append([]int(nil), bin.StageOf...)
		v.stages = bin.Stages
	}
	if err != nil {
		if errors.Is(err, ErrStageOverflow) {
			v.overflow = true
		} else {
			v.errMsg = err.Error()
		}
	}

	c.mu.Lock()
	if len(c.m) >= c.capEntries {
		n := uint64(len(c.m))
		c.evictions.Add(n)
		mCacheEvict.Add(n)
		c.m = make(map[string]*verdict)
	}
	c.m[key] = v
	c.mu.Unlock()
	return bin, err
}

// Compile-cache effectiveness gauges. Counters already track hit/miss flow
// (lemur_pisa_compile_cache_total); the gauges snapshot the cache's current
// state — including the derived hit rate — so a -metrics-out file or a
// Prometheus scrape shows cache effectiveness without post-processing.
// Package-level handles: they describe the process-wide shared cache, the
// one every placement stage check routes through.
var (
	gCacheHits      = obs.G("lemur_pisa_compile_cache_hits")
	gCacheMisses    = obs.G("lemur_pisa_compile_cache_misses")
	gCacheEvictions = obs.G("lemur_pisa_compile_cache_evictions")
	gCacheEntries   = obs.G("lemur_pisa_compile_cache_entries")
	gCacheHitRate   = obs.G("lemur_pisa_compile_cache_hit_rate")
)

// SyncObs publishes the cache's current Stats (hits, misses, evictions,
// entries, hit rate) to the obs registry gauges. Call before exporting
// metrics; gauges overwrite, so the last cache to sync wins — in practice
// that is always the shared cache.
func (c *CompileCache) SyncObs() {
	st := c.Stats()
	gCacheHits.Set(float64(st.Hits))
	gCacheMisses.Set(float64(st.Misses))
	gCacheEvictions.Set(float64(st.Evictions))
	gCacheEntries.Set(float64(st.Entries))
	gCacheHitRate.Set(st.HitRate())
}

// Stats snapshots the hit/miss/eviction counters.
func (c *CompileCache) Stats() CacheStats {
	c.mu.Lock()
	entries := len(c.m)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
	}
}

// Reset drops every entry and zeroes the counters (tests and cold-vs-warm
// benchmarking).
func (c *CompileCache) Reset() {
	c.mu.Lock()
	c.m = make(map[string]*verdict)
	c.mu.Unlock()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// cacheKey canonicalizes the compile inputs. Table order matters (Deps index
// into the slice), so the serialization is positional.
func cacheKey(spec *hw.PISASpec, tables []LogicalTable) string {
	var b strings.Builder
	b.Grow(32 + len(tables)*24)
	var buf [20]byte
	writeInt := func(n int) {
		b.Write(strconv.AppendInt(buf[:0], int64(n), 10))
	}
	writeInt(spec.Stages)
	b.WriteByte('/')
	writeInt(spec.SRAMPerStage)
	b.WriteByte('/')
	writeInt(spec.TCAMPerStage)
	b.WriteByte('/')
	writeInt(spec.TablesPerStage)
	for i := range tables {
		t := &tables[i]
		b.WriteByte(';')
		b.WriteString(t.Name)
		b.WriteByte(':')
		writeInt(t.SRAM)
		b.WriteByte(',')
		writeInt(t.TCAM)
		for _, d := range t.Deps {
			b.WriteByte('<')
			writeInt(d)
		}
	}
	return b.String()
}

// sharedCache memoizes compile verdicts process-wide — the Placer's stage
// checks all route through it.
var sharedCache = NewCompileCache(DefaultCacheEntries)

// SharedCache returns the process-wide compile cache.
func SharedCache() *CompileCache { return sharedCache }

// CompileCached compiles via the process-wide cache.
func CompileCached(spec *hw.PISASpec, tables []LogicalTable) (*Binary, error) {
	return sharedCache.Compile(spec, tables)
}
