// Package pisa simulates the programmable ToR switch: a stage-packing
// compiler that maps logical match/action tables onto a Tofino-class
// pipeline (the black box the Placer must invoke to learn real stage usage,
// §3.2/§5.2), and a runtime that executes chain steering plus
// switch-resident NFs at line rate.
package pisa

import (
	"errors"
	"fmt"

	"lemur/internal/hw"
)

// LogicalTable is one match/action table to place on the pipeline. Deps
// lists indices (into the same slice) of tables that must occupy strictly
// earlier stages — the meta-compiler's dependency-elimination optimizations
// (§4.2) work precisely by constructing table lists with fewer Deps edges.
type LogicalTable struct {
	Name string
	SRAM int // memory blocks
	TCAM int
	Deps []int
}

// Binary is a compiled pipeline layout.
type Binary struct {
	StageOf []int // stage index per input table
	Stages  int   // stages used (max stage + 1)
}

// ErrStageOverflow reports that a program needs more stages than the switch
// has. The returned Binary still carries the full layout so callers can
// report "would need N stages" (the paper's 27-stage ablation).
var ErrStageOverflow = errors.New("pisa: program exceeds pipeline stages")

// Compile packs tables into stages: each table goes to the earliest stage
// after all its dependencies that still has SRAM/TCAM/table-slot budget.
// This reproduces the observable behaviour of the vendor compiler's stage
// packing — mutually independent tables (parallel branches, disjoint chains)
// share stages, while dependency chains consume pipeline depth.
func Compile(spec *hw.PISASpec, tables []LogicalTable) (*Binary, error) {
	type stageRes struct {
		sram, tcam, tables int
	}
	var stages []stageRes
	bin := &Binary{StageOf: make([]int, len(tables))}

	for i, t := range tables {
		min := 0
		for _, d := range t.Deps {
			if d < 0 || d >= i {
				return nil, fmt.Errorf("pisa: table %q dep %d out of order (must reference an earlier table)", t.Name, d)
			}
			if s := bin.StageOf[d] + 1; s > min {
				min = s
			}
		}
		if t.SRAM > spec.SRAMPerStage || t.TCAM > spec.TCAMPerStage {
			return nil, fmt.Errorf("pisa: table %q (sram=%d tcam=%d) exceeds per-stage budget (%d/%d)",
				t.Name, t.SRAM, t.TCAM, spec.SRAMPerStage, spec.TCAMPerStage)
		}
		s := min
		for {
			for len(stages) <= s {
				stages = append(stages, stageRes{})
			}
			r := &stages[s]
			if r.sram+t.SRAM <= spec.SRAMPerStage &&
				r.tcam+t.TCAM <= spec.TCAMPerStage &&
				r.tables+1 <= spec.TablesPerStage {
				r.sram += t.SRAM
				r.tcam += t.TCAM
				r.tables++
				bin.StageOf[i] = s
				break
			}
			s++
		}
	}
	bin.Stages = len(stages)
	if bin.Stages > spec.Stages {
		return bin, fmt.Errorf("%w: needs %d stages, switch has %d", ErrStageOverflow, bin.Stages, spec.Stages)
	}
	return bin, nil
}

// ConservativeEstimate is the static stage estimator the paper initially
// tried ([14]-style) before resorting to invoking the real compiler: every
// table is assumed to need its own stage, plus the NSH encap/decap overhead
// when the chain spans platforms. §5.2's example: 12 tables + 2 NSH = 14
// estimated, while the compiler packs the same program into 12.
func ConservativeEstimate(nTables int, crossPlatform bool) int {
	est := nTables
	if crossPlatform {
		est += 2 // encap + decap
	}
	return est
}
