package pisa

import (
	"errors"
	"fmt"
	"sync/atomic"

	"lemur/internal/bpf"
	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/nsh"
	"lemur/internal/obs"
	"lemur/internal/packet"
)

var (
	mFrames = obs.C("lemur_frames_total", obs.L("platform", "pisa"))
	mDrops  = obs.C("lemur_frame_drops_total", obs.L("platform", "pisa"))
)

// PortKind classifies where the switch forwards a frame next.
type PortKind int

// Forwarding targets.
const (
	Egress   PortKind = iota // leave the rack
	ToServer                 // bounce to a server's NIC
	ToNIC                    // to a SmartNIC
	ToOF                     // to the OpenFlow switch
	Continue                 // next pipeline segment, same switch (branch/merge boundary)
	Dropped                  // consumed (NF drop, TTL, classification miss)
)

var portKindNames = [...]string{"egress", "server", "smartnic", "openflow", "continue", "drop"}

func (k PortKind) String() string {
	if int(k) < len(portKindNames) {
		return portKindNames[k]
	}
	return fmt.Sprintf("port(%d)", int(k))
}

// Forward is a forwarding decision: kind + device name (for ToServer/ToNIC).
type Forward struct {
	Kind   PortKind
	Target string
}

// Branch re-tags matching packets onto another service path, implementing a
// branch point in the NF-graph on the switch. Branches with a Filter match
// explicitly; filterless branches split remaining traffic by flow hash in
// proportion to Weight (operator-estimated splits, §3.2).
type Branch struct {
	Filter *bpf.Filter
	Weight float64
	SPI    uint32
	SI     uint8
}

// pickBranch selects the branch for a packet: filtered branches first in
// order, then a stable per-flow weighted choice among filterless ones.
// Returns nil if no branch applies. Two passes over the (short) branch list
// keep it allocation-free.
func pickBranch(branches []Branch, p *packet.Packet) *Branch {
	var totalW float64
	weightless := 0
	for i := range branches {
		b := &branches[i]
		if b.Filter != nil {
			if b.Filter.Match(p) {
				return b
			}
			continue
		}
		weightless++
		totalW += b.Weight
	}
	if weightless == 0 {
		return nil
	}
	var u float64
	if tu, err := p.Tuple(); err == nil {
		u = float64(tu.Hash()%100000) / 100000
	}
	if totalW <= 0 {
		idx := int(u*float64(weightless)) % weightless
		for i := range branches {
			if branches[i].Filter != nil {
				continue
			}
			if idx == 0 {
				return &branches[i]
			}
			idx--
		}
	}
	acc := 0.0
	var last *Branch
	for i := range branches {
		b := &branches[i]
		if b.Filter != nil {
			continue
		}
		acc += b.Weight / totalW
		if u < acc {
			return b
		}
		last = b
	}
	return last
}

// PathEntry is the switch's program for one (SPI, SI) point of a service
// path: NFs to apply on-switch, the SI advance, optional branch re-tagging,
// NSH encap/decap, and the forwarding decision.
type PathEntry struct {
	Apply     []nf.NF  // switch-resident NFs, run in order
	AdvanceSI uint8    // consolidated SI decrement (§4.2 optimization b)
	Branches  []Branch // evaluated after Apply; first match wins
	Encap     bool     // push NSH before forwarding (entering the path)
	Decap     bool     // strip NSH before forwarding (leaving the path)
	Out       Forward
}

// ClassifierRule maps ingress traffic (no NSH yet) onto a service path.
type ClassifierRule struct {
	Filter *bpf.Filter
	SPI    uint32
	SI     uint8
}

// Switch is the PISA ToR runtime: the chain coordinator. It processes at
// line rate, so it imposes no throughput constraint in the simulation — its
// binding resource is pipeline stages, enforced at Compile time.
type Switch struct {
	Spec    *hw.PISASpec
	Binary  *Binary
	rules   []ClassifierRule
	entries map[uint32]map[uint8]*PathEntry

	// Counters for tests and the runtime, incremented atomically: the ToR
	// is the one dataplane object every simulator shard shares, so its
	// counters must tolerate concurrent ProcessFrameInto callers.
	InFrames, DroppedFrames uint64

	// scratch is the decode buffer for ProcessFrameInPlace; that entry
	// point is single-goroutine like the serial simulator driving it.
	// Concurrent callers use ProcessFrameInto with their own scratch.
	scratch packet.Packet
}

// NewSwitch builds an empty switch runtime.
func NewSwitch(spec *hw.PISASpec) *Switch {
	return &Switch{Spec: spec, entries: make(map[uint32]map[uint8]*PathEntry)}
}

// AddClassifierRule appends an ingress classification rule.
func (s *Switch) AddClassifierRule(r ClassifierRule) { s.rules = append(s.rules, r) }

// SetEntry installs the program point for (spi, si).
func (s *Switch) SetEntry(spi uint32, si uint8, e *PathEntry) {
	m := s.entries[spi]
	if m == nil {
		m = make(map[uint8]*PathEntry)
		s.entries[spi] = m
	}
	m[si] = e
}

// Entry returns the program point for (spi, si), or nil.
func (s *Switch) Entry(spi uint32, si uint8) *PathEntry {
	return s.entries[spi][si]
}

// EntryCount returns the number of installed (SPI, SI) program points.
func (s *Switch) EntryCount() int {
	n := 0
	for _, m := range s.entries {
		n += len(m)
	}
	return n
}

// ClassifierRuleCount returns the number of ingress classification rules.
func (s *Switch) ClassifierRuleCount() int { return len(s.rules) }

// RemoveSPIRange deletes every path entry and classifier rule whose SPI lies
// in [lo, hi] and reports how many of each were removed. Chains own disjoint
// SPI ranges (the metacompiler strides them), so this is the primitive a
// failover rewire uses to retract exactly one chain's steering state while
// leaving every other chain's rules untouched.
func (s *Switch) RemoveSPIRange(lo, hi uint32) (entries, rules int) {
	for spi, m := range s.entries {
		if spi >= lo && spi <= hi {
			entries += len(m)
			delete(s.entries, spi)
		}
	}
	kept := s.rules[:0]
	for _, r := range s.rules {
		if r.SPI >= lo && r.SPI <= hi {
			rules++
			continue
		}
		kept = append(kept, r)
	}
	s.rules = kept
	return entries, rules
}

// ErrNoPath is returned for frames that match no classifier rule or (SPI,SI)
// entry.
var ErrNoPath = errors.New("pisa: no service path for frame")

// ProcessFrame runs one frame through the switch pipeline and returns the
// possibly-rewritten frame plus the forwarding decision. env supplies
// simulated time for any switch-resident NFs that need it. The input frame
// buffer is reused for tag rewrites but encap/decap return a fresh buffer.
func (s *Switch) ProcessFrame(frame []byte, env *nf.Env) ([]byte, Forward, error) {
	var p packet.Packet
	return s.process(frame, env, &p, false)
}

// ProcessFrameInPlace is ProcessFrame for the simulator's zero-allocation
// fast path: NSH encap grows the frame inside its spare capacity (falling
// back to a copy only when there is none) and decap shrinks it at the tail,
// so the returned frame keeps the input's backing array and full capacity —
// exactly what a pooled-buffer caller needs to recycle it.
func (s *Switch) ProcessFrameInPlace(frame []byte, env *nf.Env) ([]byte, Forward, error) {
	return s.process(frame, env, &s.scratch, true)
}

// ProcessFrameInto is ProcessFrameInPlace with a caller-owned decode
// scratch: the entry point for drivers that run one switch from several
// goroutines (the parallel simulator gives each worker shard its own
// scratch). Steering state is read-only during processing and the frame
// counters are atomic, so concurrent callers only need distinct scratch
// buffers and distinct frames.
func (s *Switch) ProcessFrameInto(scratch *packet.Packet, frame []byte, env *nf.Env) ([]byte, Forward, error) {
	return s.process(frame, env, scratch, true)
}

func (s *Switch) process(frame []byte, env *nf.Env, p *packet.Packet, inPlace bool) (out []byte, fwd Forward, err error) {
	atomic.AddUint64(&s.InFrames, 1)
	mFrames.Inc()
	defer func() {
		if fwd.Kind == Dropped {
			mDrops.Inc()
		}
	}()
	var spi uint32
	var si uint8
	tagged := false
	if tSPI, tSI, err := nsh.Tag(frame); err == nil {
		spi, si, tagged = tSPI, tSI, true
	}

	if err := p.Decode(frame); err != nil {
		atomic.AddUint64(&s.DroppedFrames, 1)
		return nil, Forward{Kind: Dropped}, fmt.Errorf("pisa: undecodable frame: %w", err)
	}

	if !tagged {
		matched := false
		for _, r := range s.rules {
			if r.Filter == nil || r.Filter.Match(p) {
				spi, si = r.SPI, r.SI
				matched = true
				break
			}
		}
		if !matched {
			atomic.AddUint64(&s.DroppedFrames, 1)
			return nil, Forward{Kind: Dropped}, ErrNoPath
		}
	}

	e := s.Entry(spi, si)
	if e == nil {
		atomic.AddUint64(&s.DroppedFrames, 1)
		return nil, Forward{Kind: Dropped}, fmt.Errorf("%w: spi=%d si=%d", ErrNoPath, spi, si)
	}

	for _, fn := range e.Apply {
		fn.Process(p, env)
		if p.Drop {
			atomic.AddUint64(&s.DroppedFrames, 1)
			return nil, Forward{Kind: Dropped}, nil
		}
	}
	p.SyncHeaders()
	frame = p.Data

	// Compute the outgoing tag: advance past the NFs applied here, or jump
	// to a branch target (filters first, then per-flow weighted choice).
	outSPI, outSI := spi, si
	if b := pickBranch(e.Branches, p); b != nil {
		outSPI, outSI = b.SPI, b.SI
	} else if e.AdvanceSI > 0 {
		if si < e.AdvanceSI {
			atomic.AddUint64(&s.DroppedFrames, 1)
			return nil, Forward{Kind: Dropped}, fmt.Errorf("pisa: SI underflow (si=%d advance=%d)", si, e.AdvanceSI)
		}
		outSI = si - e.AdvanceSI
	}

	switch {
	case e.Encap && !tagged:
		var enc []byte
		if inPlace {
			enc, err = nsh.EncapInPlace(frame, outSPI, outSI)
		} else {
			enc, err = nsh.Encap(frame, outSPI, outSI)
		}
		if err != nil {
			atomic.AddUint64(&s.DroppedFrames, 1)
			return nil, Forward{Kind: Dropped}, err
		}
		frame = enc
	case tagged && e.Decap:
		var dec []byte
		if inPlace {
			dec, _, _, err = nsh.DecapInPlace(frame)
		} else {
			dec, _, _, err = nsh.Decap(frame)
		}
		if err != nil {
			atomic.AddUint64(&s.DroppedFrames, 1)
			return nil, Forward{Kind: Dropped}, err
		}
		frame = dec
	case tagged && (outSPI != spi || outSI != si):
		if err := nsh.SetTag(frame, outSPI, outSI); err != nil {
			atomic.AddUint64(&s.DroppedFrames, 1)
			return nil, Forward{Kind: Dropped}, err
		}
	}

	return frame, e.Out, nil
}
