package pisa

import (
	"bytes"
	"testing"

	"lemur/internal/bpf"
	"lemur/internal/nf"
	"lemur/internal/packet"
)

// mkPair builds two identically configured switches: ingress classification
// with encap toward a server, and a return path that advances + decaps.
func mkPair(t *testing.T) (*Switch, *Switch) {
	t.Helper()
	mk := func() *Switch {
		s := NewSwitch(spec())
		acl, err := nf.New("ACL", "acl0", nf.Params{"allow_dst": "172.16.0.0/12"})
		if err != nil {
			t.Fatal(err)
		}
		fwd, err := nf.New("IPv4Fwd", "fwd0", nil)
		if err != nil {
			t.Fatal(err)
		}
		s.AddClassifierRule(ClassifierRule{Filter: bpf.MustCompile("ip.src in 10.0.0.0/8"), SPI: 7, SI: 10})
		s.SetEntry(7, 10, &PathEntry{
			Apply: []nf.NF{acl}, Encap: true,
			Out: Forward{Kind: ToServer, Target: "nf-server-0"},
		})
		s.SetEntry(7, 8, &PathEntry{
			Apply: []nf.NF{fwd}, Decap: true,
			Out: Forward{Kind: Egress},
		})
		return s
	}
	return mk(), mk()
}

// TestSwitchProcessFrameInPlaceMatches: ingress encap and return-path decap
// must produce byte-identical frames and forward verdicts on the in-place
// path.
func TestSwitchProcessFrameInPlaceMatches(t *testing.T) {
	ref, fast := mkPair(t)
	env := &nf.Env{}
	for i := 0; i < 20; i++ {
		in := ingressFrame(t, uint16(80+i))

		// Ingress: classify + apply + encap.
		want, wantFwd, err := ref.ProcessFrame(append([]byte(nil), in...), env)
		if err != nil {
			t.Fatal(err)
		}
		// The in-place path needs NSH headroom in cap, like pooled buffers have.
		roomy := make([]byte, len(in), len(in)+packet.NSHLen)
		copy(roomy, in)
		got, gotFwd, err := fast.ProcessFrameInPlace(roomy, env)
		if err != nil {
			t.Fatal(err)
		}
		if gotFwd != wantFwd {
			t.Fatalf("frame %d: fwd %+v, want %+v", i, gotFwd, wantFwd)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: ingress in-place output diverges", i)
		}

		// Return path: advance + decap + egress.
		want2, wantFwd2, err := ref.ProcessFrame(append([]byte(nil), want...), env)
		if err != nil {
			t.Fatal(err)
		}
		got2, gotFwd2, err := fast.ProcessFrameInPlace(got, env)
		if err != nil {
			t.Fatal(err)
		}
		if gotFwd2 != wantFwd2 {
			t.Fatalf("frame %d: return fwd %+v, want %+v", i, gotFwd2, wantFwd2)
		}
		if !bytes.Equal(got2, want2) {
			t.Fatalf("frame %d: return-path in-place output diverges", i)
		}
	}
	if ref.InFrames != fast.InFrames {
		t.Fatalf("counter drift: ref %d fast %d", ref.InFrames, fast.InFrames)
	}
}
