package pisa

import (
	"errors"
	"testing"

	"lemur/internal/bpf"
	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/nsh"
	"lemur/internal/packet"
)

func spec() *hw.PISASpec { return hw.NewPaperTestbed().Switch }

func TestCompileIndependentTablesShareStage(t *testing.T) {
	tables := []LogicalTable{
		{Name: "a", SRAM: 1}, {Name: "b", SRAM: 1}, {Name: "c", SRAM: 1},
	}
	bin, err := Compile(spec(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Stages != 1 {
		t.Errorf("stages = %d, want 1 (independent tables pack together)", bin.Stages)
	}
}

func TestCompileDependencyChain(t *testing.T) {
	tables := []LogicalTable{
		{Name: "a", SRAM: 1},
		{Name: "b", SRAM: 1, Deps: []int{0}},
		{Name: "c", SRAM: 1, Deps: []int{1}},
	}
	bin, err := Compile(spec(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Stages != 3 {
		t.Errorf("stages = %d, want 3 (chain forces depth)", bin.Stages)
	}
	for i := 1; i < 3; i++ {
		if bin.StageOf[i] <= bin.StageOf[i-1] {
			t.Errorf("dependency violated: stage(%d)=%d <= stage(%d)=%d",
				i, bin.StageOf[i], i-1, bin.StageOf[i-1])
		}
	}
}

func TestCompileMemoryForcesSpread(t *testing.T) {
	// Two NAT-sized tables (12 SRAM blocks each, 16/stage): independent but
	// cannot share a stage.
	tables := []LogicalTable{
		{Name: "nat1", SRAM: 12}, {Name: "nat2", SRAM: 12},
	}
	bin, err := Compile(spec(), tables)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Stages != 2 {
		t.Errorf("stages = %d, want 2 (SRAM pressure)", bin.Stages)
	}
}

func TestCompileTableSlotLimit(t *testing.T) {
	sp := *spec()
	sp.TablesPerStage = 2
	tables := []LogicalTable{
		{Name: "a", SRAM: 1}, {Name: "b", SRAM: 1}, {Name: "c", SRAM: 1},
	}
	bin, err := Compile(&sp, tables)
	if err != nil {
		t.Fatal(err)
	}
	if bin.Stages != 2 {
		t.Errorf("stages = %d, want 2 (table-slot pressure)", bin.Stages)
	}
}

func TestCompileOverflow(t *testing.T) {
	var tables []LogicalTable
	for i := 0; i < 13; i++ { // 13-deep chain on a 12-stage switch
		lt := LogicalTable{Name: "t", SRAM: 1}
		if i > 0 {
			lt.Deps = []int{i - 1}
		}
		tables = append(tables, lt)
	}
	bin, err := Compile(spec(), tables)
	if !errors.Is(err, ErrStageOverflow) {
		t.Fatalf("err = %v, want ErrStageOverflow", err)
	}
	if bin == nil || bin.Stages != 13 {
		t.Errorf("overflow binary should report needed stages: %+v", bin)
	}
}

func TestCompileBadInput(t *testing.T) {
	if _, err := Compile(spec(), []LogicalTable{{Name: "x", Deps: []int{0}}}); err == nil {
		t.Error("self/forward dep must fail")
	}
	if _, err := Compile(spec(), []LogicalTable{{Name: "x", SRAM: 999}}); err == nil {
		t.Error("oversized table must fail")
	}
}

func TestExtremeNATPacking(t *testing.T) {
	// The §5.2 extreme config modeled at the compiler level:
	// steering+BPF+encap folded into one stage-1 table, ten 12-SRAM NAT
	// tables (mutually exclusive branches — no deps between them, but SRAM
	// spreads them), and a final Fwd+decap table depending on all NATs.
	tables := []LogicalTable{{Name: "steer_bpf", SRAM: 1, TCAM: 1}}
	for i := 0; i < 10; i++ {
		tables = append(tables, LogicalTable{Name: "nat", SRAM: 12, Deps: []int{0}})
	}
	fwdDeps := make([]int, 10)
	for i := range fwdDeps {
		fwdDeps[i] = i + 1
	}
	tables = append(tables, LogicalTable{Name: "fwd_decap", SRAM: 2, TCAM: 1, Deps: fwdDeps})
	bin, err := Compile(spec(), tables)
	if err != nil {
		t.Fatalf("10-NAT program must fit: %v (stages=%d)", err, bin.Stages)
	}
	if bin.Stages != 12 {
		t.Errorf("stages = %d, want exactly 12", bin.Stages)
	}
	// With 11 NATs it must overflow.
	tables11 := append([]LogicalTable{}, tables[:11]...)
	tables11 = append(tables11, LogicalTable{Name: "nat", SRAM: 12, Deps: []int{0}})
	fwdDeps11 := make([]int, 11)
	for i := range fwdDeps11 {
		fwdDeps11[i] = i + 1
	}
	tables11 = append(tables11, LogicalTable{Name: "fwd_decap", SRAM: 2, TCAM: 1, Deps: fwdDeps11})
	if _, err := Compile(spec(), tables11); !errors.Is(err, ErrStageOverflow) {
		t.Errorf("11-NAT program must overflow, got %v", err)
	}
}

func TestConservativeEstimate(t *testing.T) {
	// §5.2: 12 tables cross-platform -> estimate 14, compiler fits 12.
	if got := ConservativeEstimate(12, true); got != 14 {
		t.Errorf("estimate = %d, want 14", got)
	}
	if got := ConservativeEstimate(12, false); got != 12 {
		t.Errorf("switch-only estimate = %d, want 12", got)
	}
}

func mkSwitch(t *testing.T) *Switch {
	t.Helper()
	return NewSwitch(spec())
}

func ingressFrame(t *testing.T, dport uint16) []byte {
	t.Helper()
	return packet.Builder{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{172, 16, 0, 9},
		SrcPort: 5555, DstPort: dport, Payload: []byte("data"),
	}.Build()
}

func TestSwitchClassifyApplyForward(t *testing.T) {
	s := mkSwitch(t)
	acl, _ := nf.New("ACL", "acl0", nf.Params{"allow_dst": "172.16.0.0/12"})
	s.AddClassifierRule(ClassifierRule{Filter: bpf.MustCompile("ip.src in 10.0.0.0/8"), SPI: 7, SI: 10})
	s.SetEntry(7, 10, &PathEntry{
		Apply: []nf.NF{acl}, Encap: true,
		Out: Forward{Kind: ToServer, Target: "nf-server-0"},
	})
	out, fwd, err := s.ProcessFrame(ingressFrame(t, 80), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Kind != ToServer || fwd.Target != "nf-server-0" {
		t.Fatalf("fwd = %+v", fwd)
	}
	spi, si, err := nsh.Tag(out)
	if err != nil || spi != 7 || si != 10 {
		t.Fatalf("NSH tag = %d/%d, %v", spi, si, err)
	}
}

func TestSwitchNFDrop(t *testing.T) {
	s := mkSwitch(t)
	acl, _ := nf.New("ACL", "acl0", nf.Params{"allow_dst": "192.0.2.0/24"}) // nothing matches
	s.AddClassifierRule(ClassifierRule{SPI: 1, SI: 1})
	s.SetEntry(1, 1, &PathEntry{Apply: []nf.NF{acl}, Out: Forward{Kind: Egress}})
	_, fwd, err := s.ProcessFrame(ingressFrame(t, 80), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Kind != Dropped {
		t.Errorf("fwd = %v, want drop", fwd.Kind)
	}
	if s.DroppedFrames != 1 {
		t.Errorf("DroppedFrames = %d", s.DroppedFrames)
	}
}

func TestSwitchReturnPathAdvanceAndDecap(t *testing.T) {
	s := mkSwitch(t)
	fwdNF, _ := nf.New("IPv4Fwd", "fwd0", nil)
	// Returning packets at (5, 3): apply Fwd, advance SI by 3, decap, egress.
	s.SetEntry(5, 3, &PathEntry{
		Apply: []nf.NF{fwdNF}, Decap: true,
		Out: Forward{Kind: Egress},
	})
	enc, err := nsh.Encap(ingressFrame(t, 443), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, fwd, err := s.ProcessFrame(enc, &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.Kind != Egress {
		t.Fatalf("fwd = %+v", fwd)
	}
	if _, _, err := nsh.Tag(out); !errors.Is(err, nsh.ErrNotEncapped) {
		t.Error("NSH not stripped on egress")
	}
	var p packet.Packet
	if err := p.Decode(out); err != nil || !p.HasUDP {
		t.Fatalf("egress frame damaged: %v", err)
	}
}

func TestSwitchAdvanceSI(t *testing.T) {
	s := mkSwitch(t)
	s.SetEntry(9, 8, &PathEntry{AdvanceSI: 3, Out: Forward{Kind: ToServer, Target: "srv"}})
	enc, _ := nsh.Encap(ingressFrame(t, 1), 9, 8)
	out, _, err := s.ProcessFrame(enc, &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	_, si, _ := nsh.Tag(out)
	if si != 5 {
		t.Errorf("si = %d, want 5", si)
	}
}

func TestSwitchBranchReTag(t *testing.T) {
	s := mkSwitch(t)
	s.SetEntry(2, 4, &PathEntry{
		Branches: []Branch{
			{Filter: bpf.MustCompile("udp.dport == 53"), SPI: 21, SI: 9},
			{Filter: nil, SPI: 22, SI: 9}, // default branch
		},
		Out: Forward{Kind: ToServer, Target: "srv"},
	})
	enc, _ := nsh.Encap(ingressFrame(t, 53), 2, 4)
	out, _, err := s.ProcessFrame(enc, &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	spi, si, _ := nsh.Tag(out)
	if spi != 21 || si != 9 {
		t.Errorf("branch tag = %d/%d, want 21/9", spi, si)
	}
	enc2, _ := nsh.Encap(ingressFrame(t, 80), 2, 4)
	out2, _, _ := s.ProcessFrame(enc2, &nf.Env{})
	spi2, _, _ := nsh.Tag(out2)
	if spi2 != 22 {
		t.Errorf("default branch tag = %d, want 22", spi2)
	}
}

func TestSwitchNoPath(t *testing.T) {
	s := mkSwitch(t)
	_, fwd, err := s.ProcessFrame(ingressFrame(t, 80), &nf.Env{})
	if !errors.Is(err, ErrNoPath) || fwd.Kind != Dropped {
		t.Errorf("err = %v fwd = %v", err, fwd)
	}
	// Tagged frame with no entry.
	s.AddClassifierRule(ClassifierRule{SPI: 1, SI: 1})
	enc, _ := nsh.Encap(ingressFrame(t, 80), 99, 9)
	if _, _, err := s.ProcessFrame(enc, &nf.Env{}); !errors.Is(err, ErrNoPath) {
		t.Errorf("tagged miss: %v", err)
	}
}
