package pisa

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"lemur/internal/hw"
	"lemur/internal/obs"
)

// randomTables draws a random dependency-ordered logical table list, sized so
// the mix covers clean fits, stage overflows, and per-stage budget failures
// against randomSpec.
func randomTables(rng *rand.Rand) []LogicalTable {
	n := 1 + rng.Intn(40)
	tables := make([]LogicalTable, n)
	for i := range tables {
		t := LogicalTable{
			Name: fmt.Sprintf("t%d", i),
			SRAM: rng.Intn(5),
			TCAM: rng.Intn(3),
		}
		if i > 0 {
			for d := 0; d < 3 && rng.Intn(2) == 0; d++ {
				t.Deps = append(t.Deps, rng.Intn(i))
			}
		}
		tables[i] = t
	}
	return tables
}

func randomSpec(rng *rand.Rand) *hw.PISASpec {
	if rng.Intn(3) == 0 {
		// Tiny pipeline: provokes overflow and budget errors.
		return &hw.PISASpec{Stages: 1 + rng.Intn(3), SRAMPerStage: 2 + rng.Intn(3),
			TCAMPerStage: 1 + rng.Intn(2), TablesPerStage: 1 + rng.Intn(3)}
	}
	return hw.NewPaperTestbed().Switch
}

// TestCompileCachedMatchesCold: over ≥100 randomized (spec, tables) inputs,
// the cached path must return the exact verdict of a cold Compile — on first
// sight (miss) and on repeat (hit): same layout, same error text, and the
// same errors.Is(ErrStageOverflow) classification.
func TestCompileCachedMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	cache := NewCompileCache(0)
	for trial := 0; trial < 150; trial++ {
		spec := randomSpec(rng)
		tables := randomTables(rng)
		cold, coldErr := Compile(spec, tables)

		for pass, want := range []string{"miss", "hit"} {
			got, gotErr := cache.Compile(spec, tables)
			label := fmt.Sprintf("trial %d %s", trial, want)
			if (cold == nil) != (got == nil) {
				t.Fatalf("%s: binary presence differs: cold=%v cached=%v", label, cold, got)
			}
			if cold != nil {
				if !reflect.DeepEqual(cold.StageOf, got.StageOf) || cold.Stages != got.Stages {
					t.Errorf("%s: layout differs: cold=%+v cached=%+v", label, cold, got)
				}
			}
			if (coldErr == nil) != (gotErr == nil) {
				t.Fatalf("%s: error presence differs: cold=%v cached=%v", label, coldErr, gotErr)
			}
			if coldErr != nil {
				if coldErr.Error() != gotErr.Error() {
					t.Errorf("%s: error text differs:\n cold:   %v\n cached: %v", label, coldErr, gotErr)
				}
				if errors.Is(coldErr, ErrStageOverflow) != errors.Is(gotErr, ErrStageOverflow) {
					t.Errorf("%s: overflow classification differs", label)
				}
			}
			_ = pass
		}
	}
	st := cache.Stats()
	if st.Misses != 150 || st.Hits != 150 {
		t.Errorf("stats = %+v, want 150 misses and 150 hits", st)
	}
}

// TestCacheHitReturnsFreshBinary: mutating a returned layout must not poison
// later hits.
func TestCacheHitReturnsFreshBinary(t *testing.T) {
	cache := NewCompileCache(0)
	spec := hw.NewPaperTestbed().Switch
	tables := []LogicalTable{{Name: "a", SRAM: 1}, {Name: "b", SRAM: 1, Deps: []int{0}}}
	first, err := cache.Compile(spec, tables)
	if err != nil {
		t.Fatal(err)
	}
	first.StageOf[0] = 99
	first.Stages = -1
	second, err := cache.Compile(spec, tables)
	if err != nil {
		t.Fatal(err)
	}
	if second.StageOf[0] == 99 || second.Stages == -1 {
		t.Errorf("cached binary was aliased to the caller's copy: %+v", second)
	}
}

// TestCacheEviction: a tiny cap flushes the generation but stays correct.
func TestCacheEviction(t *testing.T) {
	cache := NewCompileCache(4)
	spec := hw.NewPaperTestbed().Switch
	for i := 0; i < 20; i++ {
		tables := []LogicalTable{{Name: fmt.Sprintf("u%d", i), SRAM: 1}}
		if _, err := cache.Compile(spec, tables); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Errorf("no evictions after 20 distinct inserts into a 4-entry cache: %+v", st)
	}
	if st.Entries > 4 {
		t.Errorf("cache holds %d entries, cap is 4", st.Entries)
	}
	// Entries survive until flushed; re-inserting a resident key must hit.
	tables := []LogicalTable{{Name: "u19", SRAM: 1}}
	if _, err := cache.Compile(spec, tables); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats(); got.Hits != st.Hits+1 {
		t.Errorf("resident key did not hit: %+v -> %+v", st, got)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a small key
// space; the race detector validates the locking and every result must match
// the cold compile.
func TestCacheConcurrent(t *testing.T) {
	cache := NewCompileCache(0)
	rng := rand.New(rand.NewSource(5))
	spec := hw.NewPaperTestbed().Switch
	inputs := make([][]LogicalTable, 8)
	want := make([]*Binary, 8)
	for i := range inputs {
		inputs[i] = randomTables(rng)
		want[i], _ = Compile(spec, inputs[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for k := 0; k < 200; k++ {
				i := r.Intn(len(inputs))
				got, _ := cache.Compile(spec, inputs[i])
				if (got == nil) != (want[i] == nil) ||
					(got != nil && !reflect.DeepEqual(got.StageOf, want[i].StageOf)) {
					t.Errorf("concurrent verdict diverged for input %d", i)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestCacheSyncObs: SyncObs must publish the cache's live Stats — including
// the derived hit rate — to the registry gauges a -metrics-out snapshot
// exports.
func TestCacheSyncObs(t *testing.T) {
	obs.Enable()
	t.Cleanup(func() {
		obs.Disable()
		obs.Reset()
	})
	cache := NewCompileCache(0)
	spec := hw.NewPaperTestbed().Switch
	tables := randomTables(rand.New(rand.NewSource(77)))
	if _, err := cache.Compile(spec, tables); err != nil { // miss
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // hits
		if _, err := cache.Compile(spec, tables); err != nil {
			t.Fatal(err)
		}
	}
	cache.SyncObs()

	st := cache.Stats()
	if st.Hits != 3 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	checks := []struct {
		name string
		want float64
	}{
		{"lemur_pisa_compile_cache_hits", 3},
		{"lemur_pisa_compile_cache_misses", 1},
		{"lemur_pisa_compile_cache_evictions", 0},
		{"lemur_pisa_compile_cache_entries", 1},
		{"lemur_pisa_compile_cache_hit_rate", 0.75},
	}
	for _, c := range checks {
		if got := obs.G(c.name).Value(); got != c.want {
			t.Errorf("gauge %s = %v, want %v", c.name, got, c.want)
		}
	}
}
