package core

import (
	"errors"
	"strings"
	"testing"

	"lemur/internal/hw"
	"lemur/internal/placer"
)

var evalRestrict = map[string][]hw.Platform{"IPv4Fwd": {hw.PISA}}

const spec = `
chain web {
  slo { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8  dst = 172.16.0.0/12 }
  acl0 = ACL(allow_dst = "172.16.0.0/12", rules = 1024)
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  acl0 -> enc0 -> fwd0
}`

func newSys(t *testing.T, opts ...hw.TestbedOption) *System {
	t.Helper()
	s := NewSystem(hw.NewPaperTestbed(opts...))
	s.Restrict = evalRestrict
	return s
}

func TestWorkflow(t *testing.T) {
	s := newSys(t)
	if _, err := s.Place(); !errors.Is(err, ErrNoChains) {
		t.Errorf("Place with no chains: %v", err)
	}
	if err := s.LoadSpec(spec); err != nil {
		t.Fatal(err)
	}
	if len(s.Chains()) != 1 || len(s.Graphs()) != 1 {
		t.Fatalf("chains=%d graphs=%d", len(s.Chains()), len(s.Graphs()))
	}
	res, err := s.Place()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %s", res.Reason)
	}
	if s.Result() != res {
		t.Error("Result() does not return the cached placement")
	}
	d, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if d.Artifacts == nil {
		t.Error("no artifacts")
	}
	tb, err := s.Deploy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Verify(20); err != nil {
		t.Fatal(err)
	}
	// Loading another spec invalidates the pipeline state.
	if err := s.LoadSpec(strings.Replace(spec, "chain web", "chain web2", 1)); err != nil {
		t.Fatal(err)
	}
	if s.Result() != nil {
		t.Error("LoadSpec did not invalidate the placement")
	}
}

func TestCompileWithoutFeasiblePlacement(t *testing.T) {
	s := newSys(t)
	if err := s.LoadSpec(strings.Replace(spec, "tmin = 2Gbps", "tmin = 90Gbps", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compile(); !errors.Is(err, ErrNotPlaced) {
		t.Errorf("Compile on infeasible: %v", err)
	}
}

func TestDeployImplicitlyPlaces(t *testing.T) {
	s := newSys(t)
	if err := s.LoadSpec(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Deploy(); err != nil {
		t.Fatalf("Deploy without explicit Place: %v", err)
	}
}

func TestFailServerReplans(t *testing.T) {
	s := newSys(t, hw.WithServers(2))
	if err := s.LoadSpec(spec); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place()
	if err != nil || !res.Feasible {
		t.Fatalf("initial placement: %v %s", err, res.Reason)
	}
	if err := s.FailServer("nf-server-1"); err != nil {
		t.Fatal(err)
	}
	if s.Result() != nil {
		t.Error("failure did not invalidate the placement")
	}
	res2, err := s.Place()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Feasible {
		t.Fatalf("replan infeasible: %s", res2.Reason)
	}
	for _, sg := range res2.Subgroups {
		if sg.Server == "nf-server-1" {
			t.Errorf("replan still uses the failed server")
		}
	}
	// Unknown and last-server failures are rejected.
	if err := s.FailServer("ghost"); err == nil {
		t.Error("want error for unknown server")
	}
	if err := s.FailServer("nf-server-0"); err == nil {
		t.Error("want error failing the last server")
	}
}

func TestFailSmartNICFallsBackToServer(t *testing.T) {
	s := newSys(t, hw.WithSmartNIC())
	nicSpec := `
chain nic {
  slo { tmin = 3Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8 }
  fe0  = FastEncrypt()
  fwd0 = IPv4Fwd()
  fe0 -> fwd0
}`
	if err := s.LoadSpec(nicSpec); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Place()
	if !res.Feasible || len(res.NICUses) == 0 {
		t.Fatalf("expected a NIC placement: feasible=%v nics=%d", res.Feasible, len(res.NICUses))
	}
	if err := s.FailSmartNIC("agilio-cx-40"); err != nil {
		t.Fatal(err)
	}
	res2, _ := s.Place()
	if !res2.Feasible {
		t.Fatalf("fallback infeasible: %s", res2.Reason)
	}
	if len(res2.NICUses) != 0 {
		t.Error("replan still uses the failed NIC")
	}
	if err := s.FailSmartNIC("ghost"); err == nil {
		t.Error("want error for unknown NIC")
	}
}

func TestReserveHeadroom(t *testing.T) {
	s := newSys(t)
	if err := s.LoadSpec(spec); err != nil {
		t.Fatal(err)
	}
	if err := s.ReserveHeadroom(5); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place()
	if err != nil || !res.Feasible {
		t.Fatalf("placement with headroom: %v", err)
	}
	used := 0
	for _, sg := range res.Subgroups {
		used += sg.Cores
	}
	if used > 10 { // 16 total - 1 demux - 5 headroom
		t.Errorf("headroom violated: %d cores used", used)
	}
	if err := s.ReserveHeadroom(99); err == nil {
		t.Error("want error for impossible headroom")
	}
	if err := s.ReserveHeadroom(-1); err == nil {
		t.Error("want error for negative headroom")
	}
}

func TestMILPSchemeViaSystem(t *testing.T) {
	s := newSys(t)
	s.Scheme = placer.SchemeMILP
	if err := s.LoadSpec(spec); err != nil {
		t.Fatal(err)
	}
	res, err := s.Place()
	if err != nil || !res.Feasible {
		t.Fatalf("MILP via system: %v %s", err, res.Reason)
	}
}
