// Package core orchestrates the full Lemur workflow (Figure 1): parse NF
// chain specifications, run the Placer, invoke the meta-compiler, and stand
// up the cross-platform deployment on the simulated testbed. The public
// lemur package is a thin veneer over this orchestrator.
package core

import (
	"errors"
	"fmt"

	"lemur/internal/hw"
	"lemur/internal/metacompiler"
	"lemur/internal/nfgraph"
	"lemur/internal/nfspec"
	"lemur/internal/placer"
	"lemur/internal/profile"
	"lemur/internal/runtime"
)

// System is one Lemur instance: a topology plus loaded chain specs and the
// state of the place/compile/deploy pipeline.
type System struct {
	Topo     *hw.Topology
	DB       *profile.DB
	Restrict map[string][]hw.Platform
	Scheme   placer.Scheme
	Seed     int64
	// Parallel is the placer's candidate-evaluation worker count (<=1 =
	// serial; results are identical at any value).
	Parallel int
	// Headroom is the per-server worker-core reserve withheld from the
	// placer's spare-core pour so later admissions have budget
	// (placer.Input.HeadroomCores). 0 = the paper's offline placement.
	Headroom int
	// SimWorkers is the worker-shard count threaded into every simulation
	// run (runtime.SimConfig.Workers). Results are byte-identical at any
	// value; 0 or 1 keeps runs serial.
	SimWorkers int

	chains []*nfspec.Chain
	graphs []*nfgraph.Graph

	result     *placer.Result
	deployment *metacompiler.Deployment
}

// NewSystem builds a system on the given topology with Lemur's heuristic
// placement and registry-derived profiles.
func NewSystem(topo *hw.Topology) *System {
	return &System{
		Topo:   topo,
		DB:     profile.DefaultDB(),
		Scheme: placer.SchemeLemur,
		Seed:   1,
	}
}

// Workflow errors.
var (
	ErrNoChains  = errors.New("core: no chains loaded")
	ErrNotPlaced = errors.New("core: Place has not produced a feasible placement")
)

// LoadSpec parses chain specification text and appends its chains. It may
// be called multiple times.
func (s *System) LoadSpec(src string) error {
	chains, err := nfspec.Parse(src)
	if err != nil {
		return err
	}
	for _, c := range chains {
		g, err := nfgraph.Build(c)
		if err != nil {
			return err
		}
		s.chains = append(s.chains, c)
		s.graphs = append(s.graphs, g)
	}
	s.result, s.deployment = nil, nil // invalidate downstream state
	return nil
}

// Subset returns a derived system sharing the topology, profiles, and
// configuration but holding only the chains keep accepts (by spec name, in
// load order). The derived pipeline state starts empty; graphs are shared by
// pointer with the parent, so a placement of the subset can later admit the
// excluded chains incrementally (placer.Admit keys pinned state by pointer).
func (s *System) Subset(keep func(name string) bool) *System {
	d := NewSystem(s.Topo)
	d.DB, d.Restrict, d.Scheme, d.Seed, d.Parallel, d.Headroom, d.SimWorkers =
		s.DB, s.Restrict, s.Scheme, s.Seed, s.Parallel, s.Headroom, s.SimWorkers
	for i, c := range s.chains {
		if keep(c.Name) {
			d.chains = append(d.chains, c)
			d.graphs = append(d.graphs, s.graphs[i])
		}
	}
	return d
}

// Chains returns the loaded chain specs.
func (s *System) Chains() []*nfspec.Chain { return s.chains }

// Graphs returns the built chain graphs.
func (s *System) Graphs() []*nfgraph.Graph { return s.graphs }

// Input assembles the placer input for the current state.
func (s *System) Input() (*placer.Input, error) {
	if len(s.graphs) == 0 {
		return nil, ErrNoChains
	}
	return &placer.Input{
		Chains:        s.graphs,
		Topo:          s.Topo,
		DB:            s.DB,
		Restrict:      s.Restrict,
		Parallel:      s.Parallel,
		HeadroomCores: s.Headroom,
	}, nil
}

// Place runs the configured placement scheme. The result is retained for
// Compile/Deploy and also returned (infeasible results carry a Reason).
func (s *System) Place() (*placer.Result, error) {
	in, err := s.Input()
	if err != nil {
		return nil, err
	}
	res, err := placer.Place(s.Scheme, in)
	if err != nil {
		return nil, err
	}
	s.result = res
	s.deployment = nil
	return res, nil
}

// Result returns the last placement, or nil.
func (s *System) Result() *placer.Result { return s.result }

// Compile runs the meta-compiler on the last feasible placement.
func (s *System) Compile() (*metacompiler.Deployment, error) {
	if s.result == nil {
		if _, err := s.Place(); err != nil {
			return nil, err
		}
	}
	if !s.result.Feasible {
		return nil, fmt.Errorf("%w: %s", ErrNotPlaced, s.result.Reason)
	}
	in, err := s.Input()
	if err != nil {
		return nil, err
	}
	d, err := metacompiler.Compile(in, s.result)
	if err != nil {
		return nil, err
	}
	s.deployment = d
	return d, nil
}

// Deploy compiles (if needed) and returns a live testbed.
func (s *System) Deploy() (*runtime.Testbed, error) {
	if s.deployment == nil {
		if _, err := s.Compile(); err != nil {
			return nil, err
		}
	}
	return runtime.New(s.deployment, s.Seed), nil
}
