package core

import (
	"fmt"

	"lemur/internal/hw"
)

// Failure handling (§7): Lemur leverages on-path hardware, so when a device
// fails it must re-place the affected chains on what remains — reactively
// here; proactive spare-capacity reservation is a policy on top of the same
// mechanism (see ReserveHeadroom).

// FailServer removes a server from the topology and invalidates any
// existing placement; the next Place() re-plans reactively on the reduced
// rack. Failing the last server is rejected (the registry has server-only
// NFs, so a rack without servers cannot host general chains).
func (s *System) FailServer(name string) error {
	idx := -1
	for i, srv := range s.Topo.Servers {
		if srv.Name == name {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: server %q", hw.ErrNotFound, name)
	}
	if len(s.Topo.Servers) == 1 {
		return fmt.Errorf("core: cannot fail the last server %q", name)
	}
	s.Topo.Servers = append(s.Topo.Servers[:idx], s.Topo.Servers[idx+1:]...)
	// SmartNICs hosted by the failed server go with it.
	kept := s.Topo.SmartNICs[:0]
	for _, nic := range s.Topo.SmartNICs {
		if nic.HostServer != name {
			kept = append(kept, nic)
		}
	}
	s.Topo.SmartNICs = kept
	s.result, s.deployment = nil, nil
	return nil
}

// FailSmartNIC removes a SmartNIC; its NFs fall back to servers on the next
// Place() (§7: "Lemur can always fall back to using server-based NFs").
func (s *System) FailSmartNIC(name string) error {
	idx := -1
	for i, nic := range s.Topo.SmartNICs {
		if nic.Name == name {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: smartnic %q", hw.ErrNotFound, name)
	}
	s.Topo.SmartNICs = append(s.Topo.SmartNICs[:idx], s.Topo.SmartNICs[idx+1:]...)
	s.result, s.deployment = nil, nil
	return nil
}

// ReserveHeadroom implements proactive failover provisioning: it hides n
// worker cores per server from the Placer so a re-plan after a failure has
// guaranteed room. Returns an error if any server would be left without
// workers.
func (s *System) ReserveHeadroom(coresPerServer int) error {
	if coresPerServer < 0 {
		return fmt.Errorf("core: negative headroom %d", coresPerServer)
	}
	for _, srv := range s.Topo.Servers {
		if srv.WorkerCores()-coresPerServer <= 0 {
			return fmt.Errorf("core: headroom %d leaves server %q without workers", coresPerServer, srv.Name)
		}
	}
	for _, srv := range s.Topo.Servers {
		srv.ReservedCores += coresPerServer
	}
	s.result, s.deployment = nil, nil
	return nil
}
