package metacompiler

import (
	"strings"
	"testing"

	"lemur/internal/hw"
	"lemur/internal/placer"
)

// twoChainSpec places two server-using chains so that killing one server
// affects only the chain(s) routed through it.
const twoChainSpec = `
chain alpha {
  slo { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.1.0.0/16 }
  mon0 = Monitor()
  fwd0 = IPv4Fwd()
  mon0 -> fwd0
}
chain beta {
  slo { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.2.0.0/16 }
  nat0 = NAT()
  fwd0 = IPv4Fwd()
  nat0 -> fwd0
}`

func TestRewireIncremental(t *testing.T) {
	in, d := compileSpec(t, hw.NewPaperTestbed(hw.WithServers(2)), twoChainSpec)
	prev := d.Result

	// Fail the server hosting beta's (or alpha's) subgroup.
	victim := prev.Subgroups[len(prev.Subgroups)-1].Server
	failed := placer.NewNodeSet(victim)
	dead := failed.Expand(in.Topo)
	affected := placer.AffectedChains(in, prev, dead)
	if len(affected) == 0 {
		t.Fatalf("no affected chains for victim %s", victim)
	}
	next, err := placer.Replace(prev, in, failed)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}

	affectedSet := map[int]bool{}
	for _, ci := range affected {
		affectedSet[ci] = true
	}
	// Snapshot the pinned chains' switch entries (pointer identity) before
	// the rewire: these exact objects must survive.
	type key struct {
		spi uint32
		si  uint8
	}
	pinnedPtr := map[key]interface{}{}
	for ci := range in.Chains {
		if affectedSet[ci] {
			continue
		}
		lo, hi := chainSPIRange(ci)
		for spi := lo; spi <= hi; spi++ {
			for si := 0; si <= 64; si++ {
				if e := d.Switch.Entry(spi, uint8(si)); e != nil {
					pinnedPtr[key{spi, uint8(si)}] = e
				}
			}
		}
	}

	rep, err := d.Rewire(next, affected)
	if err != nil {
		t.Fatalf("Rewire: %v", err)
	}
	if d.Result != next {
		t.Fatal("Rewire did not swap the deployment result")
	}
	if rep.KeptSwitchEntries != len(pinnedPtr) {
		t.Fatalf("report says %d kept entries, pinned chains own %d", rep.KeptSwitchEntries, len(pinnedPtr))
	}
	for k, want := range pinnedPtr {
		if got := d.Switch.Entry(k.spi, k.si); interface{}(got) != want {
			t.Fatalf("pinned switch entry spi=%d si=%d was touched by the rewire", k.spi, k.si)
		}
	}

	// No server pipeline on the dead host carries subgroups, and no
	// remaining subgroup maps to a dead placer subgroup.
	for name, pl := range d.Pipelines {
		if dead[name] && len(pl.Subgroups()) != 0 {
			t.Fatalf("dead server %s still has %d subgroups installed", name, len(pl.Subgroups()))
		}
		for _, bsg := range pl.Subgroups() {
			psg := d.SubgroupOf[bsg]
			if psg != nil && dead[psg.Server] {
				t.Fatalf("subgroup %s still mapped to dead server %s", bsg.Name, psg.Server)
			}
		}
	}

	// Core shares remain disjoint per server and only cover live subgroups.
	for _, srv := range in.Topo.Servers {
		usedBy := map[int]string{}
		for psg, shares := range d.Shares {
			if psg.Server != srv.Name {
				continue
			}
			for _, s := range shares {
				if owner, clash := usedBy[s.Core]; clash {
					t.Fatalf("server %s core %d assigned to both %s and %s", srv.Name, s.Core, owner, psg.Name())
				}
				usedBy[s.Core] = psg.Name()
				if s.Core < srv.ReservedCores {
					t.Fatalf("subgroup %s claimed reserved core %d", psg.Name(), s.Core)
				}
			}
		}
	}
	for psg := range d.Shares {
		found := false
		for _, live := range next.Subgroups {
			if psg == live {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("stale share entry for removed subgroup %s", psg.Name())
		}
	}

	// Every affected chain is fully re-emitted: its classifier rule exists
	// and its path entries resolve end to end.
	if d.Switch.ClassifierRuleCount() != len(in.Chains) {
		t.Fatalf("want %d classifier rules after rewire, got %d", len(in.Chains), d.Switch.ClassifierRuleCount())
	}
	if rep.InstalledSubgroups == 0 && rep.RemovedSubgroups > 0 {
		t.Fatalf("rewire removed %d subgroups but installed none", rep.RemovedSubgroups)
	}
	if !strings.Contains(rep.String(), "rewire:") {
		t.Fatalf("report String malformed: %s", rep.String())
	}

	// Rewiring twice from the same prev state is deterministic: a second
	// deployment compiled from scratch and rewired identically must agree
	// on the report.
	in2, d2 := compileSpec(t, hw.NewPaperTestbed(hw.WithServers(2)), twoChainSpec)
	next2, err := placer.Replace(d2.Result, in2, placer.NewNodeSet(victim))
	if err != nil {
		t.Fatalf("Replace 2: %v", err)
	}
	rep2, err := d2.Rewire(next2, placer.AffectedChains(in2, d2.Result, placer.NewNodeSet(victim).Expand(in2.Topo)))
	if err != nil {
		t.Fatalf("Rewire 2: %v", err)
	}
	if rep.String() != rep2.String() {
		t.Fatalf("rewire not deterministic:\n  %s\n  %s", rep, rep2)
	}
}

func TestRewireRejectsInfeasible(t *testing.T) {
	_, d := compileSpec(t, hw.NewPaperTestbed(hw.WithServers(2)), twoChainSpec)
	if _, err := d.Rewire(nil, nil); err == nil {
		t.Fatal("Rewire(nil) must fail")
	}
	bad := &placer.Result{Feasible: false, Reason: "synthetic"}
	if _, err := d.Rewire(bad, nil); err == nil || !strings.Contains(err.Error(), "synthetic") {
		t.Fatalf("Rewire(infeasible) must fail loudly, got %v", err)
	}
	if _, err := d.Rewire(d.Result, []int{99}); err == nil {
		t.Fatal("Rewire with out-of-range chain index must fail")
	}
}

func TestRewireNoAffectedChainsIsNoOp(t *testing.T) {
	in, d := compileSpec(t, hw.NewPaperTestbed(hw.WithServers(2)), twoChainSpec)
	prev := d.Result
	entries, rules := d.Switch.EntryCount(), d.Switch.ClassifierRuleCount()
	next, err := placer.Replace(prev, in, nil)
	if err != nil {
		t.Fatalf("Replace: %v", err)
	}
	rep, err := d.Rewire(next, nil)
	if err != nil {
		t.Fatalf("Rewire: %v", err)
	}
	if rep.RemovedSwitchEntries != 0 || rep.InstalledSwitchEntries != 0 ||
		rep.RemovedSubgroups != 0 || rep.InstalledSubgroups != 0 {
		t.Fatalf("no-op rewire mutated state: %s", rep)
	}
	if d.Switch.EntryCount() != entries || d.Switch.ClassifierRuleCount() != rules {
		t.Fatal("no-op rewire changed switch state")
	}
	if d.Result != next {
		t.Fatal("no-op rewire must still adopt the new result")
	}
}
