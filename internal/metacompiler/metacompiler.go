// Package metacompiler implements Lemur's meta-compiler (§4): given a chain
// specification and the Placer's placement, it synthesizes everything needed
// to execute the chains across platforms — NSH service-path routing (SPI/SI
// assignment, encap/decap, branch retagging), the unified P4 program for the
// ToR switch, BESS pipeline scripts and scheduler configuration for each
// server, and verified eBPF programs for SmartNIC offloads. The output is a
// Deployment that internal/runtime can execute, plus the generated code
// artifacts with auto-generated-LoC accounting (§5.3).
package metacompiler

import (
	"fmt"

	"lemur/internal/bess"
	"lemur/internal/bpf"
	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/nfgraph"
	"lemur/internal/obs"
	"lemur/internal/pisa"
	"lemur/internal/placer"
	"lemur/internal/smartnic"
)

// Deployment is a fully-stitched cross-platform NF chain installation.
type Deployment struct {
	Input  *placer.Input
	Result *placer.Result

	Switch    *pisa.Switch
	Pipelines map[string]*bess.Pipeline // per server
	NICs      map[string]*smartnic.NIC

	// ChainPaths holds per-chain service paths (SPI assignment).
	ChainPaths [][]*ServicePath

	// SubgroupOf maps a bess subgroup back to its placer subgroup (capacity
	// and core data). Aliased entries (merge suffixes reached under several
	// SPIs) map to the same placer subgroup.
	SubgroupOf map[*bess.Subgroup]*placer.Subgroup

	// Shares records the concrete core shares assigned to each placer
	// subgroup; the runtime uses it to derive actual NUMA placement.
	Shares map[*placer.Subgroup][]bess.CoreShare

	claimed map[*placer.Subgroup]bool // placer subgroups whose shares were installed

	// Artifacts are the generated code texts and line counts.
	Artifacts *Artifacts
}

// Compile builds a Deployment from a feasible placement.
func Compile(in *placer.Input, res *placer.Result) (*Deployment, error) {
	if !res.Feasible {
		return nil, fmt.Errorf("metacompiler: placement is infeasible: %s", res.Reason)
	}
	sp := obs.Span("metacompiler.compile").SetAttrInt("chains", len(in.Chains))
	d := &Deployment{
		Input:      in,
		Result:     res,
		Switch:     pisa.NewSwitch(in.Topo.Switch),
		Pipelines:  make(map[string]*bess.Pipeline),
		NICs:       make(map[string]*smartnic.NIC),
		SubgroupOf: make(map[*bess.Subgroup]*placer.Subgroup),
		claimed:    make(map[*placer.Subgroup]bool),
	}
	for _, s := range in.Topo.Servers {
		d.Pipelines[s.Name] = bess.NewPipeline(s)
	}
	for _, n := range in.Topo.SmartNICs {
		d.NICs[n.Name] = smartnic.NewNIC(n)
	}

	paths, err := buildServicePaths(in)
	if err != nil {
		return nil, err
	}
	d.ChainPaths = paths

	insts, err := instantiate(in)
	if err != nil {
		return nil, err
	}

	cores, err := assignCores(in, res)
	if err != nil {
		return nil, err
	}
	d.Shares = cores

	for ci := range in.Chains {
		if err := d.installChain(ci, insts, cores); err != nil {
			return nil, err
		}
	}

	if err := d.generateArtifacts(); err != nil {
		return nil, err
	}
	a := d.Artifacts
	obs.C("lemur_compiles_total").Inc()
	obs.G("lemur_compile_lines", obs.L("kind", "p4")).Set(float64(a.P4TotalLines))
	obs.G("lemur_compile_lines", obs.L("kind", "p4_handwritten")).Set(float64(a.HandwrittenP4Lines))
	obs.G("lemur_compile_lines", obs.L("kind", "bess")).Set(float64(a.BESSLines))
	obs.G("lemur_compile_lines", obs.L("kind", "ebpf")).Set(float64(a.EBPFLines))
	sp.SetAttrInt("bess_scripts", len(a.BESSScripts)).
		SetAttrInt("ebpf_sources", len(a.EBPFSources)).
		SetAttrInt("p4_lines", a.P4TotalLines).
		End()
	return d, nil
}

// instantiate builds one NF instance per graph node (shared across every
// platform entry that references the node, so NF state behaves like one
// deployment).
func instantiate(in *placer.Input) (map[*nfgraph.Node]nf.NF, error) {
	out := make(map[*nfgraph.Node]nf.NF)
	for _, g := range in.Chains {
		for _, n := range g.Order {
			inst, err := nf.New(n.Class(), g.Chain.Name+"/"+n.Name(), n.Inst.Params)
			if err != nil {
				return nil, fmt.Errorf("metacompiler: %w", err)
			}
			out[n] = inst
		}
	}
	return out, nil
}

// coreAssignment maps each placer subgroup to concrete core shares.
type coreAssignment map[*placer.Subgroup][]bess.CoreShare

// assignCores lays subgroups onto concrete core indices per server,
// skipping each server's reserved demux cores (core 0 first). Cores on the
// NIC's socket run same-NUMA; the rest are cross-socket.
func assignCores(in *placer.Input, res *placer.Result) (coreAssignment, error) {
	next := map[string]int{}
	for _, s := range in.Topo.Servers {
		next[s.Name] = s.ReservedCores // cores [0, ReservedCores) run the demux
	}
	out := make(coreAssignment)
	for _, sg := range res.Subgroups {
		srv, err := in.Topo.ServerByName(sg.Server)
		if err != nil {
			return nil, err
		}
		for k := 0; k < sg.Cores; k++ {
			core := next[sg.Server]
			if core >= srv.TotalCores() {
				return nil, fmt.Errorf("metacompiler: server %s out of cores for %s", sg.Server, sg.Name())
			}
			next[sg.Server]++
			out[sg] = append(out[sg], bess.CoreShare{Core: core, Fraction: 1})
		}
	}
	return out, nil
}

// installChain walks one chain's service paths and installs switch entries,
// server subgroups and NIC programs for every owned segment.
func (d *Deployment) installChain(ci int, insts map[*nfgraph.Node]nf.NF, cores coreAssignment) error {
	in, res := d.Input, d.Result
	g := in.Chains[ci]
	chainPaths := d.ChainPaths[ci]

	// Index placer subgroups by their first node for matching.
	subOf := map[*nfgraph.Node]*placer.Subgroup{}
	for _, sg := range res.Subgroups {
		if sg.ChainIdx == ci {
			subOf[sg.Nodes[0]] = sg
		}
	}

	// Ingress classification: the chain's aggregate maps to the first
	// path's head.
	first := chainPaths[0]
	d.Switch.AddClassifierRule(pisa.ClassifierRule{
		Filter: aggregateFilter(g),
		SPI:    first.SPI,
		SI:     uint8(first.Length()),
	})

	for _, sp := range chainPaths {
		segs := segments(sp, res.Assign, res.Breaks)
		for si, seg := range segs {
			if seg.end <= sp.OwnedFrom {
				continue // installed by the owning sibling path
			}
			if seg.start < sp.OwnedFrom {
				return fmt.Errorf("metacompiler: segment straddles ownership boundary in chain %s", g.Chain.Name)
			}
			var next *segment
			if si+1 < len(segs) {
				next = &segs[si+1]
			}
			if err := d.installSegment(ci, sp, seg, next, chainPaths, insts, subOf, cores); err != nil {
				return err
			}
			// Relay entry: every off-switch segment gets a ToR steering
			// entry at its own (SPI, SI) so packets can reach it from any
			// predecessor — the path head (untagged ingress), another
			// off-switch device, or a branch retag (whose target platform
			// the branching entry cannot know).
			if seg.platform != hw.PISA {
				entrySI := sp.SIAt(seg.start)
				if d.Switch.Entry(sp.SPI, entrySI) == nil {
					d.Switch.SetEntry(sp.SPI, entrySI, &pisa.PathEntry{
						Encap: true, // first hop arrives untagged
						Out:   forwardTo(seg),
					})
				}
			}
		}
		// Egress relay: paths ending off-switch return tagged with SI 0.
		last := segs[len(segs)-1]
		if last.platform != hw.PISA && d.Switch.Entry(sp.SPI, 0) == nil {
			d.Switch.SetEntry(sp.SPI, 0, &pisa.PathEntry{
				Decap: true,
				Out:   pisa.Forward{Kind: pisa.Egress},
			})
		}
	}
	return nil
}

// installSegment emits the per-platform program for one owned segment.
func (d *Deployment) installSegment(ci int, sp *ServicePath, seg segment, next *segment,
	chainPaths []*ServicePath, insts map[*nfgraph.Node]nf.NF,
	subOf map[*nfgraph.Node]*placer.Subgroup, cores coreAssignment) error {

	nodes := sp.Nodes[seg.start:seg.end]
	nfs := make([]nf.NF, len(nodes))
	for i, n := range nodes {
		nfs[i] = insts[n]
	}
	entrySI := sp.SIAt(seg.start)
	advance := uint8(seg.end - seg.start)
	lastNode := nodes[len(nodes)-1]

	// Branch retargeting when the segment ends at a branch node.
	var pisaBranches []pisa.Branch
	var bessBranches []bess.Branch
	if lastNode.IsBranch() {
		for _, bt := range branchTargetsAt(sp, seg.end-1, chainPaths) {
			var flt *bpf.Filter
			if bt.filter != "" {
				f, err := bpf.Compile(bt.filter)
				if err != nil {
					return fmt.Errorf("metacompiler: branch filter: %w", err)
				}
				flt = f
			}
			pisaBranches = append(pisaBranches, pisa.Branch{Filter: flt, Weight: bt.weight, SPI: bt.spi, SI: bt.si})
			bessBranches = append(bessBranches, bess.Branch{Filter: flt, Weight: bt.weight, SPI: bt.spi, SI: bt.si})
		}
	}

	switch seg.platform {
	case hw.PISA:
		e := &pisa.PathEntry{
			Apply:     nfs,
			AdvanceSI: advance,
			Branches:  pisaBranches,
			Out:       pisa.Forward{Kind: pisa.Egress},
		}
		switch {
		case len(pisaBranches) > 0:
			// A branching entry cannot know which platform each target
			// lives on: re-inject and let the target's own entry or relay
			// steer the packet.
			e.Out = pisa.Forward{Kind: pisa.Continue}
			e.Encap = true
		case next != nil:
			e.Out = forwardTo(*next)
			// NSH is needed the moment the packet leaves this entry while
			// still mid-path — §4.2(a) elides it only for chains that never
			// leave the switch, which end with next == nil below.
			e.Encap = true
		default:
			e.Decap = true // strip NSH (no-op for never-tagged paths)
		}
		if prev := d.Switch.Entry(sp.SPI, entrySI); prev != nil {
			return fmt.Errorf("metacompiler: duplicate switch entry spi=%d si=%d", sp.SPI, entrySI)
		}
		d.Switch.SetEntry(sp.SPI, entrySI, e)

	case hw.Server:
		pl := d.Pipelines[seg.device]
		if pl == nil {
			return fmt.Errorf("metacompiler: no pipeline for server %q", seg.device)
		}
		psg := subOf[nodes[0]]
		sub := &bess.Subgroup{
			Name:      fmt.Sprintf("spi%d.si%d", sp.SPI, entrySI),
			NFs:       nfs,
			SPI:       sp.SPI,
			EntrySI:   entrySI,
			AdvanceSI: advance,
			Branches:  bessBranches,
		}
		if psg != nil {
			sub.CyclesPerPkt = psg.Cycles
			if shares, ok := cores[psg]; ok && !d.claimed[psg] {
				// Concrete shares go to the first install; aliased installs
				// (merge suffixes under sibling SPIs) share the NFs but not
				// the accounting.
				sub.Shares = shares
				d.claimed[psg] = true
			}
			srv, err := d.Input.Topo.ServerByName(seg.device)
			if err != nil {
				return err
			}
			sub.CrossSocket = anyCrossSocket(srv, sub.Shares)
			d.SubgroupOf[sub] = psg
		}
		if err := pl.Add(sub); err != nil {
			return fmt.Errorf("metacompiler: %w", err)
		}

	case hw.SmartNIC:
		nic := d.NICs[seg.device]
		if nic == nil {
			return fmt.Errorf("metacompiler: no NIC runtime for %q", seg.device)
		}
		if len(pisaBranches) > 0 {
			return fmt.Errorf("metacompiler: branch node %s cannot run on a SmartNIC", lastNode.Name())
		}
		insns := 0
		stack := 64
		for _, n := range nodes {
			insns += n.Meta.EBPFInstructions
			if n.Class() == "FastEncrypt" {
				stack = 256
			}
		}
		prog := smartnic.SynthesizeNF(fmt.Sprintf("spi%d.si%d", sp.SPI, entrySI), insns, stack)
		if err := nic.Load(sp.SPI, entrySI, &smartnic.PathProgram{
			Prog: prog, NFs: nfs, AdvanceSI: advance,
		}); err != nil {
			return fmt.Errorf("metacompiler: %w", err)
		}

	default:
		return fmt.Errorf("metacompiler: platform %v not supported by the code generator", seg.platform)
	}
	return nil
}

func forwardTo(seg segment) pisa.Forward {
	switch seg.platform {
	case hw.Server:
		return pisa.Forward{Kind: pisa.ToServer, Target: seg.device}
	case hw.SmartNIC:
		return pisa.Forward{Kind: pisa.ToNIC, Target: seg.device}
	case hw.OpenFlow:
		return pisa.Forward{Kind: pisa.ToOF, Target: seg.device}
	default:
		return pisa.Forward{Kind: pisa.Continue}
	}
}

func anyCrossSocket(srv *hw.ServerSpec, shares []bess.CoreShare) bool {
	nicSocket := srv.NICs[0].Socket
	for _, s := range shares {
		if s.Core/srv.CoresPerSocket != nicSocket {
			return true
		}
	}
	return false
}

// aggregateFilter compiles a chain's traffic aggregate into a classifier
// filter (nil = match everything).
func aggregateFilter(g *nfgraph.Graph) *bpf.Filter {
	agg := g.Chain.Aggregate
	expr := ""
	and := func(clause string) {
		if expr != "" {
			expr += " && "
		}
		expr += clause
	}
	if agg.SrcCIDR != "" {
		and("ip.src in " + agg.SrcCIDR)
	}
	if agg.DstCIDR != "" {
		and("ip.dst in " + agg.DstCIDR)
	}
	if agg.Proto != 0 {
		and(fmt.Sprintf("ip.proto == %d", agg.Proto))
	}
	if agg.DstPort != 0 {
		and(fmt.Sprintf("port.dst == %d", agg.DstPort))
	}
	if expr == "" {
		return nil
	}
	f, err := bpf.Compile(expr)
	if err != nil {
		return nil
	}
	return f
}
