package metacompiler

import (
	"fmt"

	"lemur/internal/hw"
	"lemur/internal/nfgraph"
	"lemur/internal/placer"
)

// ServicePath is one linearized NF chain with its NSH identity (§4.1): a
// service path index plus a service index that counts down from Length as
// the packet traverses NFs.
type ServicePath struct {
	SPI      uint32
	ChainIdx int
	Weight   float64
	Nodes    []*nfgraph.Node
	// OwnedFrom is the position from which this path installs its own
	// entries; earlier positions are shared with (and installed by) an
	// earlier path that has the same prefix.
	OwnedFrom int
}

// Length is the number of NFs on the path (initial SI value).
func (sp *ServicePath) Length() int { return len(sp.Nodes) }

// SIAt returns the service index a packet carries when it reaches position
// k of the path.
func (sp *ServicePath) SIAt(k int) uint8 { return uint8(sp.Length() - k) }

// segment is a maximal run of path positions on one device, additionally
// split after branch nodes and before merge nodes so segments align with
// the Placer's subgroups.
type segment struct {
	start, end int // positions [start, end)
	platform   hw.Platform
	device     string
}

// buildServicePaths assigns SPIs to every chain's linear paths and computes
// prefix ownership. SPIs are chainIdx*spiStride + pathIdx + 1 so chains can
// hold up to spiStride paths.
const spiStride = 64

func buildServicePaths(in *placer.Input) ([][]*ServicePath, error) {
	out := make([][]*ServicePath, len(in.Chains))
	for ci, g := range in.Chains {
		sps, err := chainServicePaths(g, ci)
		if err != nil {
			return nil, err
		}
		out[ci] = sps
	}
	return out, nil
}

// chainServicePaths builds one chain's service paths for slot ci. The SPI
// range is a pure function of the slot index, so paths for a chain admitted
// later (AdmitChains) are identical to what a from-scratch Compile at the
// same slot would produce.
func chainServicePaths(g *nfgraph.Graph, ci int) ([]*ServicePath, error) {
	paths := g.Paths()
	if len(paths) >= spiStride {
		return nil, fmt.Errorf("metacompiler: chain %s has %d linear paths (max %d)",
			g.Chain.Name, len(paths), spiStride-1)
	}
	sps := make([]*ServicePath, len(paths))
	for pi, p := range paths {
		sp := &ServicePath{
			SPI:      uint32(ci*spiStride + pi + 1),
			ChainIdx: ci,
			Weight:   p.Weight,
			Nodes:    p.Nodes,
		}
		// Longest common prefix with any earlier path of the chain.
		for qi := 0; qi < pi; qi++ {
			lcp := commonPrefix(sps[qi].Nodes, p.Nodes)
			if lcp > sp.OwnedFrom {
				sp.OwnedFrom = lcp
			}
		}
		sps[pi] = sp
	}
	return sps, nil
}

func commonPrefix(a, b []*nfgraph.Node) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

// segments splits a service path into device runs aligned with subgroup
// boundaries, honouring the Placer's explicit split marks.
func segments(sp *ServicePath, assign map[*nfgraph.Node]placer.Assign, breaks map[*nfgraph.Node]bool) []segment {
	var out []segment
	i := 0
	for i < len(sp.Nodes) {
		a := assign[sp.Nodes[i]]
		j := i + 1
		for j < len(sp.Nodes) {
			prev, next := sp.Nodes[j-1], sp.Nodes[j]
			na := assign[next]
			if na.Platform != a.Platform || na.Device != a.Device {
				break
			}
			if prev.IsBranch() || next.IsMerge() || breaks[next] {
				break
			}
			j++
		}
		out = append(out, segment{start: i, end: j, platform: a.Platform, device: a.Device})
		i = j
	}
	return out
}

// branchTargetsAt returns, for a branch node at position k of path sp, the
// retag targets: one per out-edge, resolved to the service path owning that
// continuation.
type branchTarget struct {
	filter string
	weight float64
	spi    uint32
	si     uint8
}

func branchTargetsAt(sp *ServicePath, k int, chainPaths []*ServicePath) []branchTarget {
	node := sp.Nodes[k]
	var out []branchTarget
	for _, e := range node.Outs {
		// Find the first path sharing sp's prefix through k and continuing
		// with e.Node — that path owns the continuation.
		for _, cand := range chainPaths {
			if len(cand.Nodes) <= k+1 {
				continue
			}
			if commonPrefix(cand.Nodes, sp.Nodes) < k+1 {
				continue
			}
			if cand.Nodes[k+1] != e.Node {
				continue
			}
			out = append(out, branchTarget{
				filter: e.Filter,
				weight: e.Weight,
				spi:    cand.SPI,
				si:     cand.SIAt(k + 1),
			})
			break
		}
	}
	return out
}
