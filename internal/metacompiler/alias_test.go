package metacompiler

import (
	"testing"

	"lemur/internal/hw"
	"lemur/internal/placer"
)

// TestMergeSuffixAliases: a merge node placed on the server is reachable
// under every sibling path's SPI. The meta-compiler must install one bess
// subgroup per SPI sharing the same NF instances and placer subgroup, with
// the core shares claimed exactly once.
func TestMergeSuffixAliases(t *testing.T) {
	src := `
chain m {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8 }
  bpf0 = BPF()
  enc0 = Encrypt()
  dec0 = Decrypt()
  mon0 = Monitor()
  fwd0 = IPv4Fwd()
  bpf0 -> [weight = 0.5] enc0
  bpf0 -> [weight = 0.5] dec0
  enc0 -> mon0
  dec0 -> mon0
  mon0 -> fwd0
}`
	in, d := compileSpec(t, hw.NewPaperTestbed(), src)
	_ = in

	paths := d.ChainPaths[0]
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}

	// mon0 appears in a subgroup under each path's SPI.
	var monSubs []string
	shares := 0
	var monPsg *placer.Subgroup
	for _, pl := range d.Pipelines {
		for _, sg := range pl.Subgroups() {
			for _, fn := range sg.NFs {
				if fn.Class() == "Monitor" {
					monSubs = append(monSubs, sg.Name)
					if len(sg.Shares) > 0 {
						shares++
					}
					if psg := d.SubgroupOf[sg]; psg != nil {
						if monPsg != nil && monPsg != psg {
							t.Error("monitor aliases map to different placer subgroups")
						}
						monPsg = psg
					}
				}
			}
		}
	}
	if len(monSubs) != 2 {
		t.Fatalf("monitor installed under %d SPIs, want 2 (%v)", len(monSubs), monSubs)
	}
	if shares != 1 {
		t.Errorf("core shares claimed by %d subgroups, want exactly 1", shares)
	}
	if monPsg == nil {
		t.Error("no placer-subgroup mapping for the merge suffix")
	}

	// The shared NF instance means state is shared: both aliases reference
	// the same nf.NF pointer.
	var ptrs []any
	for _, pl := range d.Pipelines {
		for _, sg := range pl.Subgroups() {
			for _, fn := range sg.NFs {
				if fn.Class() == "Monitor" {
					ptrs = append(ptrs, fn)
				}
			}
		}
	}
	if len(ptrs) == 2 && ptrs[0] != ptrs[1] {
		t.Error("merge-suffix aliases instantiate separate Monitor state")
	}
}

// TestBranchOnNICRejected: a branch node assigned to the SmartNIC is not
// compilable (the NIC runtime has no retag support).
func TestBranchOnNICRejected(t *testing.T) {
	src := `
chain b {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8 }
  lb0  = LB()
  enc0 = Encrypt()
  dec0 = Decrypt()
  fwd0 = IPv4Fwd()
  lb0 -> [weight = 0.5] enc0
  lb0 -> [weight = 0.5] dec0
  enc0 -> fwd0
  dec0 -> fwd0
}`
	in, d := compileSpec(t, hw.NewPaperTestbed(hw.WithSmartNIC()), src)
	_ = d // Lemur never picks a NIC branch here, so force one:
	res, err := placer.Place(placer.SchemeLemur, in)
	if err != nil || !res.Feasible {
		t.Fatalf("placement: %v", err)
	}
	for n := range res.Assign {
		if n.Class() == "LB" {
			res.Assign[n] = placer.Assign{Platform: hw.SmartNIC, Device: "agilio-cx-40"}
		}
	}
	if _, err := Compile(in, res); err == nil {
		t.Error("branch node on the SmartNIC must be rejected")
	}
}
