package metacompiler

import (
	"strings"
	"testing"

	"lemur/internal/hw"
	"lemur/internal/nfgraph"
	"lemur/internal/nfspec"
	"lemur/internal/placer"
	"lemur/internal/profile"
)

const churnBaseSpec = `
chain gold {
  slo { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.1.0.0/16 }
  mon0 = Monitor()
  fwd0 = IPv4Fwd()
  mon0 -> fwd0
}
chain silver {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 10.2.0.0/16 }
  nat0 = NAT()
  fwd0 = IPv4Fwd()
  nat0 -> fwd0
}`

const churnAdmitSpec = `
chain bronze {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 10.3.0.0/16 }
  lim0 = Limiter()
  fwd0 = IPv4Fwd()
  lim0 -> fwd0
}`

// compileWithHeadroom is compileSpec with an admission reserve, so a later
// AdmitChains has cores to draw from.
func compileWithHeadroom(t *testing.T, src string, headroom int) (*placer.Input, *Deployment) {
	t.Helper()
	chains, err := nfspec.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := &placer.Input{
		Topo: hw.NewPaperTestbed(), DB: profile.DefaultDB(),
		Restrict: evalRestrict, HeadroomCores: headroom,
	}
	for _, c := range chains {
		g, err := nfgraph.Build(c)
		if err != nil {
			t.Fatal(err)
		}
		in.Chains = append(in.Chains, g)
	}
	res, err := placer.Place(placer.SchemeLemur, in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("placement infeasible: %s", res.Reason)
	}
	d, err := Compile(in, res)
	if err != nil {
		t.Fatal(err)
	}
	return in, d
}

// pinnedEntryPtrs snapshots, per chain, every live switch entry by pointer.
func pinnedEntryPtrs(d *Deployment, chains []int) map[[2]uint32]interface{} {
	out := map[[2]uint32]interface{}{}
	for _, ci := range chains {
		lo, hi := chainSPIRange(ci)
		for spi := lo; spi <= hi; spi++ {
			for si := 0; si <= 64; si++ {
				if e := d.Switch.Entry(spi, uint8(si)); e != nil {
					out[[2]uint32{spi, uint32(si)}] = e
				}
			}
		}
	}
	return out
}

// TestAdmitChainsAdditive: admitting a chain installs only its own state —
// every prior switch entry survives by pointer identity, the report's kept
// counts reconcile, and the new chain's steering exists end to end.
func TestAdmitChainsAdditive(t *testing.T) {
	in, d := compileWithHeadroom(t, churnBaseSpec, 4)
	prev := d.Result

	newChains, err := nfspec.Parse(churnAdmitSpec)
	if err != nil {
		t.Fatal(err)
	}
	g, err := nfgraph.Build(newChains[0])
	if err != nil {
		t.Fatal(err)
	}
	grown := *in
	grown.Chains = append(append([]*nfgraph.Graph(nil), in.Chains...), g)
	rep, err := placer.Admit(prev, &grown, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcome != placer.AdmitIncremental {
		t.Fatalf("admit outcome = %s (%s), want incremental", rep.Outcome, rep.IncrementalReason)
	}

	before := pinnedEntryPtrs(d, []int{0, 1})
	prevEntries := d.Switch.EntryCount()
	rw, err := d.AdmitChains(&grown, rep.Result, []int{2})
	if err != nil {
		t.Fatalf("AdmitChains: %v", err)
	}
	if rw.RemovedSwitchEntries != 0 || rw.RemovedSubgroups != 0 {
		t.Errorf("admission removed state: %s", rw)
	}
	if rw.KeptSwitchEntries != prevEntries {
		t.Errorf("kept %d switch entries, want all %d", rw.KeptSwitchEntries, prevEntries)
	}
	for k, e := range before {
		if d.Switch.Entry(k[0], uint8(k[1])) != e {
			t.Fatalf("pinned switch entry (%d,%d) moved", k[0], k[1])
		}
	}
	if len(d.ChainPaths) != 3 || len(d.ChainPaths[2]) == 0 {
		t.Fatalf("admitted chain has no service paths: %d chains", len(d.ChainPaths))
	}
	sp := d.ChainPaths[2][0]
	if d.Switch.Entry(sp.SPI, uint8(sp.Length())) == nil {
		t.Error("admitted chain has no head switch entry")
	}
	if !strings.Contains(d.Artifacts.P4Source, "bronze") && !strings.Contains(d.Artifacts.P4Source, "spi") {
		t.Error("artifacts were not regenerated for the admitted chain")
	}
}

// TestAdmitChainsValidation: a mutated prefix or a non-tail added set is
// rejected before any state changes.
func TestAdmitChainsValidation(t *testing.T) {
	in, d := compileWithHeadroom(t, churnBaseSpec, 4)
	if _, err := d.AdmitChains(nil, nil, nil); err == nil {
		t.Fatal("nil input must fail")
	}
	grown := *in
	grown.Chains = append([]*nfgraph.Graph(nil), in.Chains...)
	if _, err := d.AdmitChains(&grown, d.Result, []int{5}); err == nil ||
		!strings.Contains(err.Error(), "chains") {
		t.Fatalf("wrong chain count must fail, got %v", err)
	}
}

// TestRetireChainsReclaims: retiring a chain removes exactly its switch
// entries, subgroups, and core shares while survivors keep theirs by
// pointer, so a later admission can reuse the freed budget.
func TestRetireChainsReclaims(t *testing.T) {
	in, d := compileWithHeadroom(t, churnBaseSpec, 0)
	prev := d.Result

	next, err := placer.Retire(prev, in, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !next.IsRetired(0) {
		t.Fatal("Retire did not mark the slot")
	}

	survivors := pinnedEntryPtrs(d, []int{1})
	victims := pinnedEntryPtrs(d, []int{0})
	if len(victims) == 0 {
		t.Fatal("victim chain had no switch entries to reclaim")
	}
	sharesBefore := len(d.Shares)
	rw, err := d.RetireChains(next, []int{0})
	if err != nil {
		t.Fatalf("RetireChains: %v", err)
	}
	if rw.InstalledSwitchEntries != 0 || rw.InstalledSubgroups != 0 {
		t.Errorf("retirement installed state: %s", rw)
	}
	if rw.RemovedSwitchEntries != len(victims) {
		t.Errorf("removed %d switch entries, want %d", rw.RemovedSwitchEntries, len(victims))
	}
	for k, e := range survivors {
		if d.Switch.Entry(k[0], uint8(k[1])) != e {
			t.Fatalf("survivor switch entry (%d,%d) moved", k[0], k[1])
		}
	}
	for k := range victims {
		if d.Switch.Entry(k[0], uint8(k[1])) != nil {
			t.Fatalf("victim switch entry (%d,%d) survived retirement", k[0], k[1])
		}
	}
	if len(d.Shares) >= sharesBefore {
		t.Errorf("core shares not reclaimed: %d before, %d after", sharesBefore, len(d.Shares))
	}

	// Double retirement of the same slot is rejected by the placer.
	if _, err := placer.Retire(next, in, []int{0}); err == nil ||
		!strings.Contains(err.Error(), "already retired") {
		t.Fatalf("double retire must fail, got %v", err)
	}

	// Validation: retiring a slot the result does not mark is rejected.
	if _, err := d.RetireChains(next, []int{1}); err == nil ||
		!strings.Contains(err.Error(), "not marked retired") {
		t.Fatalf("unmarked retire must fail, got %v", err)
	}
}
