package metacompiler

import (
	"fmt"

	"lemur/internal/obs"
	"lemur/internal/placer"
)

// AdmitChains extends a live deployment with newly admitted chains, applying
// a purely additive delta: new SPI ranges (each admitted chain's slot index
// fixes its range), new core assignments drawn from the free set, and new
// steering rules. No pinned state is touched — surviving chains keep their
// switch entries, classifier rules, BESS subgroups, core shares and NF
// instances by pointer identity, exactly as Rewire guarantees for failover.
//
// newIn must be the grown placer input whose chain prefix is pointer-
// identical to the deployment's current chains and whose contiguous tail is
// named by added; next must be the pin-preserving result of placer.Admit
// (AdmitIncremental). Applying a full-repack result requires a fresh Compile
// instead — that is the disruptive path the admission verdict warns about.
func (d *Deployment) AdmitChains(newIn *placer.Input, next *placer.Result, added []int) (*RewireReport, error) {
	if newIn == nil || next == nil {
		return nil, fmt.Errorf("metacompiler: AdmitChains needs an input and a result")
	}
	nOld := len(d.Input.Chains)
	if len(newIn.Chains) != nOld+len(added) {
		return nil, fmt.Errorf("metacompiler: AdmitChains: input has %d chains, deployment %d + %d added",
			len(newIn.Chains), nOld, len(added))
	}
	for ci := 0; ci < nOld; ci++ {
		if newIn.Chains[ci] != d.Input.Chains[ci] {
			return nil, fmt.Errorf("metacompiler: AdmitChains: chain slot %d changed (prefix must be pointer-identical)", ci)
		}
	}
	for i, ci := range added {
		if ci != nOld+i {
			return nil, fmt.Errorf("metacompiler: AdmitChains: added chains must be the contiguous tail [%d,%d), got %v",
				nOld, len(newIn.Chains), added)
		}
	}

	// New chains' SPI identity is fixed by their slot index; append their
	// service paths before the rewire installs against them.
	for _, ci := range added {
		sps, err := chainServicePaths(newIn.Chains[ci], ci)
		if err != nil {
			return nil, err
		}
		d.ChainPaths = append(d.ChainPaths, sps)
	}
	d.Input = newIn

	// From here an admission is a rewire whose affected set happens to own
	// no prior state: retraction is a no-op, installation is purely
	// additive, and the shared pinning machinery proves nothing else moved.
	rep, err := d.Rewire(next, added)
	if err != nil {
		return nil, err
	}
	obs.C("lemur_admit_chains_total").Inc()
	return rep, nil
}

// RetireChains retracts departed chains from a live deployment, reclaiming
// their switch entries, classifier rules, BESS subgroups, core shares, and
// SmartNIC programs. The chain slots (and their SPI ranges) are never
// reused; next must be the result of placer.Retire, which marks the slots in
// Retired and carries every surviving chain's subgroups by pointer.
//
// Retirement is retraction-only: no new state is installed, so surviving
// chains' rules and instances are untouched (the Kept counts in the report
// prove it).
func (d *Deployment) RetireChains(next *placer.Result, gone []int) (*RewireReport, error) {
	if next == nil || !next.Feasible {
		reason := "nil result"
		if next != nil {
			reason = next.Reason
		}
		return nil, fmt.Errorf("metacompiler: retire to infeasible placement: %s", reason)
	}
	for _, ci := range gone {
		if ci < 0 || ci >= len(d.Input.Chains) {
			return nil, fmt.Errorf("metacompiler: retire: chain index %d out of range", ci)
		}
		if !next.IsRetired(ci) {
			return nil, fmt.Errorf("metacompiler: retire: chain %d is not marked retired in the result", ci)
		}
	}
	sp := obs.Span("metacompiler.retire").SetAttrInt("gone", len(gone))
	defer sp.End()

	rep := &RewireReport{AffectedChains: append([]int(nil), gone...)}
	prevEntries := d.Switch.EntryCount()
	prevRules := d.Switch.ClassifierRuleCount()
	for _, ci := range rep.AffectedChains {
		lo, hi := chainSPIRange(ci)
		e, r := d.Switch.RemoveSPIRange(lo, hi)
		rep.RemovedSwitchEntries += e
		rep.RemovedClassifierRules += r
		for _, pl := range d.Pipelines {
			for _, bsg := range pl.RemoveSPIRange(lo, hi) {
				delete(d.SubgroupOf, bsg)
				rep.RemovedSubgroups++
			}
		}
		for _, nic := range d.NICs {
			rep.RemovedNICPrograms += nic.UnloadSPIRange(lo, hi)
		}
	}
	rep.KeptSwitchEntries = prevEntries - rep.RemovedSwitchEntries
	rep.KeptClassifierRules = prevRules - rep.RemovedClassifierRules

	// Release the retired subgroups' core shares: anything not alive in
	// next frees its cores for later admissions.
	live := make(map[*placer.Subgroup]bool, len(next.Subgroups))
	for _, psg := range next.Subgroups {
		live[psg] = true
	}
	for psg := range d.Shares {
		if !live[psg] {
			delete(d.Shares, psg)
			delete(d.claimed, psg)
		}
	}
	d.Result = next

	if err := d.generateArtifacts(); err != nil {
		return nil, err
	}
	obs.C("lemur_retire_chains_total").Inc()
	obs.C("lemur_rewire_rules_removed_total").Add(uint64(rep.RemovedSwitchEntries + rep.RemovedClassifierRules))
	sp.SetAttrInt("removed_entries", rep.RemovedSwitchEntries).
		SetAttrInt("kept_entries", rep.KeptSwitchEntries)
	return rep, nil
}
