package metacompiler

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lemur/internal/hw"
)

var update = flag.Bool("update", false, "rewrite golden artifact files under testdata/")

// Golden chains: one linear server+switch chain (canonical chain 3) and the
// SmartNIC chain (canonical chain 5), pinned at fixed SLOs so the generated
// artifacts are stable.
const goldenChain3 = `
chain chain3 {
  slo { tmin = 4Gbps  tmax = 100Gbps }
  aggregate { src = 10.3.0.0/16  dst = 172.16.0.0/12 }
  ded3 = Dedup()
  acl3 = ACL(allow_dst = "172.16.0.0/12", rules = 1024)
  lim3 = Limiter(rate_mbps = 100000)
  lb3  = LB()
  fwd3 = IPv4Fwd()
  ded3 -> acl3 -> lim3 -> lb3 -> fwd3
}`

const goldenChain5 = `
chain chain5 {
  slo { tmin = 10Gbps  tmax = 100Gbps }
  aggregate { src = 10.5.0.0/16  dst = 172.16.0.0/12 }
  acl5 = ACL(allow_dst = "172.16.0.0/12", rules = 1024)
  url5 = UrlFilter()
  fe5  = FastEncrypt()
  fwd5 = IPv4Fwd()
  acl5 -> url5 -> fe5 -> fwd5
}`

// goldenArtifacts flattens a compile's generated code into (filename, text)
// pairs in deterministic order.
func goldenArtifacts(d *Deployment) map[string]string {
	a := d.Artifacts
	out := map[string]string{"unified.p4": a.P4Source}
	for server, script := range a.BESSScripts {
		out["bess_"+server+".py"] = script
	}
	for name, src := range a.EBPFSources {
		out["xdp_"+name+".c"] = src
	}
	return out
}

func checkGolden(t *testing.T, name string, d *Deployment) {
	t.Helper()
	dir := filepath.Join("testdata", name)
	got := goldenArtifacts(d)

	if *update {
		if err := os.RemoveAll(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for file, text := range got {
			if err := os.WriteFile(filepath.Join(dir, file), []byte(text), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("updated %d golden files under %s", len(got), dir)
		return
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("missing goldens (run with -update to create): %v", err)
	}
	want := map[string]bool{}
	for _, e := range entries {
		want[e.Name()] = true
	}
	names := make([]string, 0, len(got))
	for file := range got {
		names = append(names, file)
	}
	sort.Strings(names)
	for _, file := range names {
		if !want[file] {
			t.Errorf("%s: new artifact %s has no golden (run with -update)", name, file)
			continue
		}
		delete(want, file)
		wantText, err := os.ReadFile(filepath.Join(dir, file))
		if err != nil {
			t.Fatal(err)
		}
		if got[file] != string(wantText) {
			t.Errorf("%s: artifact %s drifted from golden (run with -update if intended)\n--- got %d bytes, want %d bytes",
				name, file, len(got[file]), len(wantText))
		}
	}
	for file := range want {
		t.Errorf("%s: golden %s no longer generated", name, file)
	}
}

func TestGoldenArtifactsChain3(t *testing.T) {
	_, d := compileSpec(t, hw.NewPaperTestbed(), goldenChain3)
	checkGolden(t, "golden_chain3", d)
}

func TestGoldenArtifactsChain5SmartNIC(t *testing.T) {
	_, d := compileSpec(t, hw.NewPaperTestbed(hw.WithSmartNIC()), goldenChain5)
	if len(d.Artifacts.EBPFSources) == 0 {
		t.Fatal("SmartNIC chain generated no eBPF sources")
	}
	checkGolden(t, "golden_chain5_smartnic", d)
}

// TestGoldenGenerationDeterministic compiles the same spec twice and
// requires byte-identical artifacts — map-ordering bugs in codegen show up
// here before they show up as flaky golden diffs.
func TestGoldenGenerationDeterministic(t *testing.T) {
	_, d1 := compileSpec(t, hw.NewPaperTestbed(), goldenChain3)
	_, d2 := compileSpec(t, hw.NewPaperTestbed(), goldenChain3)
	a1, a2 := goldenArtifacts(d1), goldenArtifacts(d2)
	if len(a1) != len(a2) {
		t.Fatalf("artifact sets differ: %d vs %d", len(a1), len(a2))
	}
	for file, text := range a1 {
		if a2[file] != text {
			t.Errorf("artifact %s differs between identical compiles", file)
		}
	}
}
