package metacompiler

import (
	"fmt"
	"sort"

	"lemur/internal/bess"
	"lemur/internal/nf"
	"lemur/internal/nfgraph"
	"lemur/internal/obs"
	"lemur/internal/placer"
)

// RewireReport accounts for the steering state a failover rewire retracted
// and re-emitted, proving the rewire was incremental: untouched chains keep
// their installed rules (KeptSwitchEntries / KeptClassifierRules), and only
// the affected chains' SPI ranges are re-tagged.
type RewireReport struct {
	AffectedChains []int

	RemovedSwitchEntries   int
	RemovedClassifierRules int
	RemovedSubgroups       int
	RemovedNICPrograms     int

	InstalledSwitchEntries   int
	InstalledClassifierRules int
	InstalledSubgroups       int
	InstalledNICPrograms     int

	KeptSwitchEntries   int
	KeptClassifierRules int
}

// String renders the rewire's removed/installed/kept accounting on one
// line (the form the CLIs and ChurnReport.RewireSummaries print).
func (r *RewireReport) String() string {
	return fmt.Sprintf("rewire: chains %v, switch -%d/+%d entries (%d kept), rules -%d/+%d (%d kept), subgroups -%d/+%d, nic -%d/+%d",
		r.AffectedChains,
		r.RemovedSwitchEntries, r.InstalledSwitchEntries, r.KeptSwitchEntries,
		r.RemovedClassifierRules, r.InstalledClassifierRules, r.KeptClassifierRules,
		r.RemovedSubgroups, r.InstalledSubgroups,
		r.RemovedNICPrograms, r.InstalledNICPrograms)
}

// chainSPIRange returns the inclusive SPI range owned by chain ci. Chains
// stride SPIs (spiStride paths each), so ranges never overlap — the property
// every RemoveSPIRange call below relies on.
func chainSPIRange(ci int) (lo, hi uint32) {
	return uint32(ci*spiStride + 1), uint32((ci + 1) * spiStride)
}

// Rewire applies an incremental re-placement (placer.Replace) to a live
// deployment: it retracts the affected chains' steering state — switch path
// entries, classifier rules, server subgroups, NIC programs — by SPI range,
// then re-emits only those chains against the new placement. Pinned chains'
// rules, subgroups, core shares and NF instances are untouched; re-placed
// chains get fresh NF instances (their state restarts, as on a real
// migration) and concrete cores drawn from the surviving free set.
//
// The deployment's Result is swapped to next; ChainPaths (SPI identity) are
// placement-independent and stay valid. Artifacts are regenerated so LoC
// accounting reflects the new programs.
func (d *Deployment) Rewire(next *placer.Result, affected []int) (*RewireReport, error) {
	if next == nil || !next.Feasible {
		reason := "nil result"
		if next != nil {
			reason = next.Reason
		}
		return nil, fmt.Errorf("metacompiler: rewire to infeasible placement: %s", reason)
	}
	sp := obs.Span("metacompiler.rewire").SetAttrInt("affected", len(affected))
	defer sp.End()

	// Dedup, validate, and order the affected set.
	seen := map[int]bool{}
	cis := make([]int, 0, len(affected))
	for _, ci := range affected {
		if ci < 0 || ci >= len(d.Input.Chains) {
			return nil, fmt.Errorf("metacompiler: rewire: chain index %d out of range", ci)
		}
		if !seen[ci] {
			seen[ci] = true
			cis = append(cis, ci)
		}
	}
	sort.Ints(cis)

	rep := &RewireReport{AffectedChains: cis}
	prevEntries := d.Switch.EntryCount()
	prevRules := d.Switch.ClassifierRuleCount()

	// Retract the affected chains' steering state by SPI range.
	for _, ci := range cis {
		lo, hi := chainSPIRange(ci)
		e, r := d.Switch.RemoveSPIRange(lo, hi)
		rep.RemovedSwitchEntries += e
		rep.RemovedClassifierRules += r
		for _, pl := range d.Pipelines {
			for _, bsg := range pl.RemoveSPIRange(lo, hi) {
				delete(d.SubgroupOf, bsg)
				rep.RemovedSubgroups++
			}
		}
		for _, nic := range d.NICs {
			rep.RemovedNICPrograms += nic.UnloadSPIRange(lo, hi)
		}
	}
	rep.KeptSwitchEntries = prevEntries - rep.RemovedSwitchEntries
	rep.KeptClassifierRules = prevRules - rep.RemovedClassifierRules

	// Drop share bookkeeping for placer subgroups that did not survive the
	// re-placement (the affected chains' old subgroups), then lay fresh
	// subgroups onto cores left free by the pinned ones.
	live := make(map[*placer.Subgroup]bool, len(next.Subgroups))
	for _, psg := range next.Subgroups {
		live[psg] = true
	}
	for psg := range d.Shares {
		if !live[psg] {
			delete(d.Shares, psg)
			delete(d.claimed, psg)
		}
	}
	if err := d.assignCoresIncremental(next); err != nil {
		return nil, err
	}
	keptSubs, keptNIC := d.subgroupCount(), d.nicProgramCount()

	// Re-emit only the affected chains against the new placement.
	d.Result = next
	insts, err := instantiateChains(d.Input, cis)
	if err != nil {
		return nil, err
	}
	for _, ci := range cis {
		if err := d.installChain(ci, insts, d.Shares); err != nil {
			return nil, err
		}
	}
	rep.InstalledSwitchEntries = d.Switch.EntryCount() - rep.KeptSwitchEntries
	rep.InstalledClassifierRules = d.Switch.ClassifierRuleCount() - rep.KeptClassifierRules
	rep.InstalledSubgroups = d.subgroupCount() - keptSubs
	rep.InstalledNICPrograms = d.nicProgramCount() - keptNIC

	if err := d.generateArtifacts(); err != nil {
		return nil, err
	}
	obs.C("lemur_rewires_total").Inc()
	obs.C("lemur_rewire_rules_removed_total").Add(uint64(rep.RemovedSwitchEntries + rep.RemovedClassifierRules))
	obs.C("lemur_rewire_rules_installed_total").Add(uint64(rep.InstalledSwitchEntries + rep.InstalledClassifierRules))
	sp.SetAttrInt("removed_entries", rep.RemovedSwitchEntries).
		SetAttrInt("installed_entries", rep.InstalledSwitchEntries).
		SetAttrInt("kept_entries", rep.KeptSwitchEntries)
	return rep, nil
}

func (d *Deployment) subgroupCount() int {
	n := 0
	for _, pl := range d.Pipelines {
		n += len(pl.Subgroups())
	}
	return n
}

func (d *Deployment) nicProgramCount() int {
	n := 0
	for _, nic := range d.NICs {
		n += nic.ProgramCount()
	}
	return n
}

// assignCoresIncremental gives concrete core shares to every subgroup in
// next that lacks them, scanning each server's cores upward from the
// reserved demux block and skipping cores held by pinned subgroups. The
// scan order is deterministic (next.Subgroups order, ascending cores), so
// rewires are byte-reproducible.
func (d *Deployment) assignCoresIncremental(next *placer.Result) error {
	used := map[string]map[int]bool{}
	for _, srv := range d.Input.Topo.Servers {
		used[srv.Name] = map[int]bool{}
	}
	for _, psg := range next.Subgroups {
		if shares, ok := d.Shares[psg]; ok {
			for _, s := range shares {
				used[psg.Server][s.Core] = true
			}
		}
	}
	for _, psg := range next.Subgroups {
		if _, ok := d.Shares[psg]; ok {
			continue
		}
		srv, err := d.Input.Topo.ServerByName(psg.Server)
		if err != nil {
			return err
		}
		shares := make([]bess.CoreShare, 0, psg.Cores)
		for core := srv.ReservedCores; len(shares) < psg.Cores; core++ {
			if core >= srv.TotalCores() {
				return fmt.Errorf("metacompiler: server %s out of cores for %s", psg.Server, psg.Name())
			}
			if used[psg.Server][core] {
				continue
			}
			used[psg.Server][core] = true
			shares = append(shares, bess.CoreShare{Core: core, Fraction: 1})
		}
		d.Shares[psg] = shares
	}
	return nil
}

// instantiateChains builds fresh NF instances for just the given chains.
func instantiateChains(in *placer.Input, cis []int) (map[*nfgraph.Node]nf.NF, error) {
	out := make(map[*nfgraph.Node]nf.NF)
	for _, ci := range cis {
		g := in.Chains[ci]
		for _, n := range g.Order {
			inst, err := nf.New(n.Class(), g.Chain.Name+"/"+n.Name(), n.Inst.Params)
			if err != nil {
				return nil, fmt.Errorf("metacompiler: %w", err)
			}
			out[n] = inst
		}
	}
	return out, nil
}
