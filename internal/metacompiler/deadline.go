package metacompiler

import (
	"lemur/internal/hw"
	"lemur/internal/nfgraph"
	"lemur/internal/placer"
)

// Deadline-aware scheduling (Wang et al.): when a chain carries a latency
// deadline, every server subgroup on its paths gets a slack — the deadline
// minus the best-case delay a packet has accumulated by the time it reaches
// the subgroup — and the per-core scheduler trees order co-resident
// subgroups earliest-deadline-first by that slack. Deadline-free chains are
// untouched: their cores keep plain round-robin.

// switchPipelineDelaySec mirrors the placer's fixed PISA pipeline latency
// (checkLatency in internal/placer/finish.go).
const switchPipelineDelaySec = 1e-6

// EffectiveDeadlineSec is the chain's scheduling deadline: the mean bound
// d_max when set, else the tail bound d_max_p99, else 0 (no deadline). The
// runtime shares it to score deadline-SLO compliance with the same
// deadline the scheduler trees were built against.
func EffectiveDeadlineSec(g *nfgraph.Graph) float64 {
	if d := g.Chain.SLO.DMaxSec; d > 0 {
		return d
	}
	return g.Chain.SLO.DMaxP99Sec
}

// DeadlineSlacks computes the EDF slack of every server subgroup that
// belongs to a deadline-bearing chain: the chain's effective deadline minus
// the best-case upstream delay (switch pipeline, one hop latency per
// platform transition, and the full execution of upstream server
// subgroups), minimized across the service paths that reach the subgroup.
// Merge-aliased installs share their placer subgroup, so the map is keyed
// by *placer.Subgroup. Chains without a deadline contribute nothing; the
// result is empty for a deadline-free deployment.
func (d *Deployment) DeadlineSlacks() map[*placer.Subgroup]float64 {
	in, res := d.Input, d.Result
	slacks := map[*placer.Subgroup]float64{}
	clockHz := in.Topo.Servers[0].ClockHz
	for ci, g := range in.Chains {
		dl := EffectiveDeadlineSec(g)
		if dl <= 0 || res.IsRetired(ci) || ci >= len(d.ChainPaths) {
			continue
		}
		psgOf := map[*nfgraph.Node]*placer.Subgroup{}
		for _, sg := range res.Subgroups {
			if sg.ChainIdx == ci {
				psgOf[sg.Nodes[0]] = sg
			}
		}
		for _, sp := range d.ChainPaths[ci] {
			delay := switchPipelineDelaySec
			prev, prevDev := hw.PISA, ""
			for _, seg := range segments(sp, res.Assign, res.Breaks) {
				if seg.platform != prev || (seg.platform != hw.PISA && seg.device != prevDev) {
					delay += in.Topo.HopLatencySec
					prev, prevDev = seg.platform, seg.device
				}
				if seg.platform != hw.Server {
					continue
				}
				psg := psgOf[sp.Nodes[seg.start]]
				if psg == nil {
					continue
				}
				s := dl - delay
				if cur, ok := slacks[psg]; !ok || s < cur {
					slacks[psg] = s
				}
				if clockHz > 0 {
					delay += psg.Cycles / clockHz
				}
			}
		}
	}
	return slacks
}

// subgroupSlacks projects DeadlineSlacks onto one server's installed
// subgroup names — the shape BuildSchedulersEDF consumes. Returns nil when
// no resident subgroup carries a deadline, which keeps the emitted trees
// byte-identical to the round-robin-only output.
func (d *Deployment) subgroupSlacks(server string, slacks map[*placer.Subgroup]float64) map[string]float64 {
	if len(slacks) == 0 {
		return nil
	}
	var out map[string]float64
	pl := d.Pipelines[server]
	if pl == nil {
		return nil
	}
	for _, sg := range pl.Subgroups() {
		psg := d.SubgroupOf[sg]
		if psg == nil {
			continue
		}
		if s, ok := slacks[psg]; ok {
			if out == nil {
				out = map[string]float64{}
			}
			out[sg.Name] = s
		}
	}
	return out
}
