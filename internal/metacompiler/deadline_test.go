package metacompiler

import (
	"strings"
	"testing"

	"lemur/internal/hw"
)

// TestDeadlineSlacks: a deadline-bearing chain yields one slack per server
// subgroup, strictly decreasing along the chain (downstream subgroups have
// burned more of the deadline), below the deadline itself (switch pipeline
// and the server hop always precede a subgroup), and the emitted BESS
// scheduler switches to an EDF tree annotated with that slack.
func TestDeadlineSlacks(t *testing.T) {
	src := `
chain dl {
  slo { tmin = 1Gbps  tmax = 20Gbps  dmax = 500us }
  aggregate { src = 10.0.0.0/8 }
  nat0 = NAT()
  lim0 = Limiter()
  fwd0 = IPv4Fwd()
  nat0 -> lim0 -> fwd0
}`
	_, d := compileSpec(t, hw.NewPaperTestbed(), src)
	slacks := d.DeadlineSlacks()
	if len(slacks) == 0 {
		t.Fatal("deadline-bearing chain produced no slacks")
	}
	dl := 500e-6
	for psg, s := range slacks {
		if s <= 0 || s >= dl {
			t.Errorf("subgroup %s slack %v out of (0, %v)", psg.Name(), s, dl)
		}
	}
	// Every slack map entry must resolve to an installed subgroup name on
	// the pipeline, and the script must carry the EDF tree.
	named := d.subgroupSlacks("nf-server-0", slacks)
	if len(named) == 0 {
		t.Fatal("no named slacks for the hosting server")
	}
	script := d.Artifacts.BESSScripts["nf-server-0"]
	if !strings.Contains(script, "deadline_edf") || !strings.Contains(script, "slack") {
		t.Errorf("BESS script lacks the EDF scheduler:\n%s", script)
	}
	if strings.Contains(script, "round_robin") {
		t.Errorf("deadline core still renders round_robin:\n%s", script)
	}

	// A deadline-free compile of the same NFs must not produce slacks and
	// must keep round-robin.
	_, d2 := compileSpec(t, hw.NewPaperTestbed(), strings.Replace(src, "  dmax = 500us", "", 1))
	if s := d2.DeadlineSlacks(); len(s) != 0 {
		t.Errorf("deadline-free deployment produced slacks: %v", s)
	}
	if d2.subgroupSlacks("nf-server-0", nil) != nil {
		t.Error("subgroupSlacks(nil) must be nil")
	}
	script2 := d2.Artifacts.BESSScripts["nf-server-0"]
	if !strings.Contains(script2, "round_robin") || strings.Contains(script2, "deadline_edf") {
		t.Errorf("deadline-free script not round-robin:\n%s", script2)
	}

	// d_max_p99 alone also arms EDF (the effective deadline falls back to
	// the tail bound).
	_, d3 := compileSpec(t, hw.NewPaperTestbed(),
		strings.Replace(src, "dmax = 500us", "dmax_p99 = 800us", 1))
	if len(d3.DeadlineSlacks()) == 0 {
		t.Error("d_max_p99-only chain produced no slacks")
	}
}

// TestDeadlineSlacksBranched: on a branched chain, sibling server arms
// entered at the same depth share the upstream delay (equal slack), and a
// subgroup downstream of another server subgroup on the same arm has
// strictly less slack (the upstream subgroup's execution burned into it).
func TestDeadlineSlacksBranched(t *testing.T) {
	src := `
chain br {
  slo { tmin = 500Mbps  tmax = 20Gbps  dmax = 2ms }
  aggregate { src = 10.0.0.0/8 }
  bpf0 = BPF()
  enc0 = Encrypt()
  enc1 = Encrypt()
  lim1 = Limiter()
  fwd0 = IPv4Fwd()
  bpf0 -> [weight = 0.5] enc0
  bpf0 -> [weight = 0.5] enc1
  enc0 -> fwd0
  enc1 -> lim1
  lim1 -> fwd0
}`
	_, d := compileSpec(t, hw.NewPaperTestbed(), src)
	slacks := d.DeadlineSlacks()
	byFirst := map[string]float64{}
	for psg, s := range slacks {
		byFirst[psg.Nodes[0].Name()] = s
	}
	s0, ok0 := byFirst["enc0"]
	s1, ok1 := byFirst["enc1"]
	if !ok0 || !ok1 {
		t.Fatalf("missing arm slacks, got %v", byFirst)
	}
	if s0 != s1 {
		t.Errorf("sibling arms entered at equal depth differ: %v vs %v", s0, s1)
	}
	if sl, ok := byFirst["lim1"]; ok && sl >= s1 {
		t.Errorf("downstream lim1 slack %v >= upstream enc1 slack %v", sl, s1)
	}
	if len(slacks) < 2 {
		t.Fatalf("branched chain slacks = %d, want >= 2", len(slacks))
	}
}
