package chaos

import (
	"reflect"
	"testing"
)

func TestParseSingleCrash(t *testing.T) {
	p, err := Parse("crash:nf-server-1@0.3s")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{{Kind: Crash, Target: "nf-server-1", AtSec: 0.3}}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("got %+v want %+v", p.Events, want)
	}
}

func TestParseFormats(t *testing.T) {
	usec := 1e-6 // runtime multiply, matching the parser's float arithmetic
	cases := []struct {
		in   string
		want Event
	}{
		{"crash:s1@300ms", Event{Kind: Crash, Target: "s1", AtSec: 0.3}},
		{"crash:s1@0.25", Event{Kind: Crash, Target: "s1", AtSec: 0.25}},
		{"crash:s1@100us", Event{Kind: Crash, Target: "s1", AtSec: 100 * usec}},
		{"degrade:nic0@0.1s", Event{Kind: LinkDegrade, Target: "nic0", AtSec: 0.1, Factor: 0.5}},
		{"degrade:nic0@0.1sx0.25", Event{Kind: LinkDegrade, Target: "nic0", AtSec: 0.1, Factor: 0.25}},
		{"overload:s2@50msx8", Event{Kind: NFOverload, Target: "s2", AtSec: 0.05, Factor: 8}},
		{"overload:s2@0.05s", Event{Kind: NFOverload, Target: "s2", AtSec: 0.05, Factor: 4}},
		{" kill:s1@1s ", Event{Kind: Crash, Target: "s1", AtSec: 1}},
	}
	for _, c := range cases {
		p, err := Parse(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if len(p.Events) != 1 || p.Events[0] != c.want {
			t.Fatalf("%q: got %+v want %+v", c.in, p.Events, c.want)
		}
	}
}

func TestParseMultiSortedByTime(t *testing.T) {
	p, err := Parse("crash:b@0.4s;degrade:a@0.1sx0.5,overload:c@0.2sx2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 3 {
		t.Fatalf("want 3 events, got %d", len(p.Events))
	}
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i-1].AtSec > p.Events[i].AtSec {
			t.Fatalf("events not sorted: %+v", p.Events)
		}
	}
	if p.Events[2].Target != "b" {
		t.Fatalf("latest event should be the crash of b: %+v", p.Events)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"boom:s1@0.1s",         // unknown kind
		"crash:s1",             // no time
		"crash:@0.1s",          // empty target
		"crash:s1@zebra",       // bad time
		"crash:s1@-1s",         // negative time
		"degrade:s1@0.1sx1.5",  // degrade factor > 1
		"overload:s1@0.1sx0.5", // overload factor < 1
		"nocolon",
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q): want error, got nil", in)
		}
	}
}

func TestParseEmptyIsEmptyPlan(t *testing.T) {
	for _, in := range []string{"", " ", ";;", ", ,"} {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if !p.Empty() {
			t.Fatalf("Parse(%q): want empty plan, got %+v", in, p.Events)
		}
	}
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan must be Empty")
	}
}

func TestStringRoundTrip(t *testing.T) {
	p, err := Parse("crash:s1@0.3s;degrade:nic@0.1sx0.25;overload:s2@0.2sx8")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(p.Events, p2.Events) {
		t.Fatalf("round trip changed events:\n  %+v\n  %+v", p.Events, p2.Events)
	}
}

func TestDelaysDefaultsAndOverrides(t *testing.T) {
	var nilPlan *Plan
	d, r := nilPlan.Delays()
	if d != DefaultDetectionDelaySec || r != DefaultReconfigDelaySec {
		t.Fatalf("nil plan delays: got %g,%g", d, r)
	}
	p := &Plan{DetectionDelaySec: 0.001, ReconfigDelaySec: 0.002}
	d, r = p.Delays()
	if d != 0.001 || r != 0.002 {
		t.Fatalf("override delays: got %g,%g", d, r)
	}
	// Negative means "explicitly zero" (instant failover).
	p = &Plan{DetectionDelaySec: -1, ReconfigDelaySec: -1}
	d, r = p.Delays()
	if d != 0 || r != 0 {
		t.Fatalf("explicit-zero delays: got %g,%g", d, r)
	}
}

func TestRandomPlanDeterministic(t *testing.T) {
	targets := []string{"nf-server-1", "nf-server-2", "nf-server-3"}
	a := RandomPlan(42, targets, 2, 0.5)
	b := RandomPlan(42, targets, 2, 0.5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different plans:\n  %+v\n  %+v", a, b)
	}
	if len(a.Events) != 2 {
		t.Fatalf("want 2 events, got %d", len(a.Events))
	}
	seen := map[string]bool{}
	for _, e := range a.Events {
		if e.Kind != Crash {
			t.Fatalf("RandomPlan yields crashes only, got %v", e.Kind)
		}
		if e.AtSec <= 0 || e.AtSec >= 0.5 {
			t.Fatalf("event time %g outside (0, 0.5)", e.AtSec)
		}
		if seen[e.Target] {
			t.Fatalf("duplicate target %q", e.Target)
		}
		seen[e.Target] = true
	}
	if c := RandomPlan(7, targets, 99, 1.0); len(c.Events) != len(targets) {
		t.Fatalf("n capped at len(targets): got %d", len(c.Events))
	}
	if e := RandomPlan(7, nil, 3, 1.0); !e.Empty() {
		t.Fatalf("no targets must give empty plan")
	}
}
