// Package chaos defines deterministic fault-injection plans for the
// discrete-time simulator. A Plan is a seeded schedule of node crashes,
// link degradations, and NF overloads at simulated times; the runtime
// consumes it via runtime.SimConfig.Faults and reacts by dropping
// in-flight packets, throttling budgets, and — for crashes — triggering
// an incremental re-placement (placer.Replace) plus a steering-rule
// rewire (metacompiler.Rewire) after a configurable detection +
// reconfiguration delay.
//
// The package is dependency-free by design: the placer, metacompiler,
// runtime, and CLIs all import it without cycles.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies a fault event.
type Kind int

const (
	// Crash removes a server (and any SmartNIC it hosts) from service.
	// In-flight packets on the node are dropped; after the plan's
	// detection + reconfiguration delay, traffic re-steers onto an
	// incrementally re-computed placement.
	Crash Kind = iota
	// LinkDegrade scales a device's service capacity by Factor
	// (e.g. 0.5 halves a server's per-step cycle budget, or makes a
	// SmartNIC drop a deterministic fraction of its traffic).
	LinkDegrade
	// NFOverload scales the per-packet cost of every NF on the target
	// server by Factor (e.g. 4.0 models a pathological input mix).
	NFOverload
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case LinkDegrade:
		return "degrade"
	case NFOverload:
		return "overload"
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// Default fault-model parameters. Detection covers the testbed noticing a
// dead node (BFD/heartbeat timescale); reconfig covers Replace + Rewire
// (rule re-install timescale). Both are simulated-time delays.
const (
	DefaultDetectionDelaySec = 0.010
	DefaultReconfigDelaySec  = 0.020

	defaultDegradeFactor  = 0.5
	defaultOverloadFactor = 4.0
)

// Event is one scheduled fault.
type Event struct {
	Kind   Kind
	Target string  // device name: a server ("nf-server-1") or SmartNIC ("agilio-cx-40")
	AtSec  float64 // simulated time the fault fires
	// Factor parameterizes LinkDegrade (capacity multiplier, <1 slows)
	// and NFOverload (cost multiplier, >1 slows). Ignored for Crash.
	Factor float64
}

// String renders the event in the grammar Parse accepts.
func (e Event) String() string {
	s := fmt.Sprintf("%s:%s@%gs", e.Kind, e.Target, e.AtSec)
	if e.Kind != Crash && e.Factor != 0 {
		s += fmt.Sprintf("x%g", e.Factor)
	}
	return s
}

// Plan is a deterministic fault schedule plus the failover timing model.
type Plan struct {
	// Events fire at their AtSec in simulated time. Normalize sorts them.
	Events []Event
	// DetectionDelaySec elapses between a crash and the testbed noticing;
	// the node drops traffic silently during this window.
	DetectionDelaySec float64
	// ReconfigDelaySec elapses between detection and the re-placed
	// steering rules taking effect (Replace + Rewire install time).
	ReconfigDelaySec float64
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Normalize sorts events by fire time (stable, so equal-time events keep
// their authored order) and returns the plan for chaining.
func (p *Plan) Normalize() *Plan {
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].AtSec < p.Events[j].AtSec })
	return p
}

// Delays returns the detection and reconfiguration delays with defaults
// applied (negative values mean "explicitly zero" is allowed: only
// unset/zero fields default).
func (p *Plan) Delays() (detection, reconfig float64) {
	detection, reconfig = DefaultDetectionDelaySec, DefaultReconfigDelaySec
	if p == nil {
		return
	}
	if p.DetectionDelaySec != 0 {
		detection = p.DetectionDelaySec
	}
	if p.ReconfigDelaySec != 0 {
		reconfig = p.ReconfigDelaySec
	}
	if detection < 0 {
		detection = 0
	}
	if reconfig < 0 {
		reconfig = 0
	}
	return
}

// String renders the event schedule in Parse's grammar.
func (p *Plan) String() string {
	if p.Empty() {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Validate checks event well-formedness (times, factors, targets).
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i, e := range p.Events {
		if e.Target == "" {
			return fmt.Errorf("chaos: event %d: empty target", i)
		}
		if e.AtSec < 0 {
			return fmt.Errorf("chaos: event %d (%s): negative time %g", i, e.Target, e.AtSec)
		}
		switch e.Kind {
		case Crash:
		case LinkDegrade:
			if e.Factor < 0 || e.Factor > 1 {
				return fmt.Errorf("chaos: event %d (%s): degrade factor %g outside [0,1]", i, e.Target, e.Factor)
			}
		case NFOverload:
			if e.Factor < 1 {
				return fmt.Errorf("chaos: event %d (%s): overload factor %g < 1", i, e.Target, e.Factor)
			}
		default:
			return fmt.Errorf("chaos: event %d (%s): unknown kind %d", i, e.Target, int(e.Kind))
		}
	}
	return nil
}

// Parse builds a Plan from a compact schedule string:
//
//	crash:nf-server-1@0.3s
//	crash:nf-server-1@300ms;degrade:agilio-cx-40@0.1sx0.5
//	overload:nf-server-2@50msx8,crash:nf-server-1@0.2
//
// Grammar per event: kind ":" target "@" time ["x" factor]. Events are
// separated by ";" or ",". Times accept "0.3s", "300ms", or bare seconds.
// Factors default to 0.5 (degrade) and 4 (overload); crash takes none.
// The returned plan is normalized (events sorted by time) and validated.
func Parse(s string) (*Plan, error) {
	p := &Plan{}
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool { return r == ';' || r == ',' }) {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		ev, err := parseEvent(tok)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p.Normalize(), nil
}

func parseEvent(tok string) (Event, error) {
	var ev Event
	kind, rest, ok := strings.Cut(tok, ":")
	if !ok {
		return ev, fmt.Errorf("chaos: %q: want kind:target@time", tok)
	}
	switch strings.ToLower(strings.TrimSpace(kind)) {
	case "crash", "kill", "fail":
		ev.Kind = Crash
	case "degrade", "link", "slow":
		ev.Kind = LinkDegrade
	case "overload", "hot":
		ev.Kind = NFOverload
	default:
		return ev, fmt.Errorf("chaos: %q: unknown kind %q (want crash, degrade, or overload)", tok, kind)
	}
	target, at, ok := strings.Cut(rest, "@")
	if !ok {
		return ev, fmt.Errorf("chaos: %q: missing @time", tok)
	}
	ev.Target = strings.TrimSpace(target)
	if i := strings.LastIndexByte(at, 'x'); i >= 0 && ev.Kind != Crash {
		f, err := strconv.ParseFloat(strings.TrimSpace(at[i+1:]), 64)
		if err != nil {
			return ev, fmt.Errorf("chaos: %q: bad factor: %v", tok, err)
		}
		ev.Factor = f
		at = at[:i]
	}
	if ev.Factor == 0 {
		switch ev.Kind {
		case LinkDegrade:
			ev.Factor = defaultDegradeFactor
		case NFOverload:
			ev.Factor = defaultOverloadFactor
		}
	}
	sec, err := parseTime(strings.TrimSpace(at))
	if err != nil {
		return ev, fmt.Errorf("chaos: %q: %v", tok, err)
	}
	ev.AtSec = sec
	return ev, nil
}

// ParseTime parses a schedule timestamp — "0.3s", "300ms", "50us", or bare
// seconds — into seconds. Shared with the churn schedule grammar, which uses
// the same @time syntax.
func ParseTime(s string) (float64, error) { return parseTime(s) }

func parseTime(s string) (float64, error) {
	mult := 1.0
	switch {
	case strings.HasSuffix(s, "ms"):
		s, mult = s[:len(s)-2], 1e-3
	case strings.HasSuffix(s, "us"):
		s, mult = s[:len(s)-2], 1e-6
	case strings.HasSuffix(s, "s"):
		s = s[:len(s)-1]
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return v * mult, nil
}

// RandomPlan draws a seeded schedule of n single-target crash events over
// the given candidate devices, uniformly placed in (0, durationSec). The
// same seed always yields the same plan; targets are consumed in the order
// given, so callers should pass a deterministically ordered slice.
func RandomPlan(seed int64, targets []string, n int, durationSec float64) *Plan {
	rng := rand.New(rand.NewSource(seed*2654435761 + 97))
	p := &Plan{}
	if len(targets) == 0 {
		return p
	}
	perm := rng.Perm(len(targets))
	if n > len(targets) {
		n = len(targets)
	}
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, Event{
			Kind:   Crash,
			Target: targets[perm[i]],
			AtSec:  durationSec * (0.1 + 0.8*rng.Float64()),
		})
	}
	return p.Normalize()
}
