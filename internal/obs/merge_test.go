package obs

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// mergeEvent is one recorded metric update, replayable against any registry.
type mergeEvent struct {
	kind   int // 0 counter Add, 1 gauge Add, 2 gauge Set, 3 histogram Observe
	series int
	u      uint64
	f      float64
}

// mergeSeries describes one metric series drawn by the generator.
type mergeSeries struct {
	kind   int // 0 counter, 1 gauge, 2 histogram
	name   string
	labels []Label
	owner  int // shard registry that owns every event of this series
}

func replay(reg *Registry, series []mergeSeries, evs []mergeEvent) {
	for _, ev := range evs {
		s := series[ev.series]
		switch ev.kind {
		case 0:
			reg.Counter(s.name, s.labels...).Add(ev.u)
		case 1:
			reg.Gauge(s.name, s.labels...).Add(ev.f)
		case 2:
			reg.Gauge(s.name, s.labels...).Set(ev.f)
		case 3:
			reg.Histogram(s.name, s.labels...).Observe(ev.f)
		}
	}
}

func snapshotJSON(t *testing.T, reg *Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergePartitionedSeries is the merge exactness property the parallel
// simulator relies on: when every series is wholly owned by one shard
// registry, merging the shards (in any fixed order) into a fresh registry
// yields an export byte-identical to accumulating the same event stream
// into a single registry. Values include histogram bucket boundaries
// (histMin·2^k) and their float neighbours, where a bucketing discrepancy
// between the two paths would shift counts.
func TestMergePartitionedSeries(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		nShards := 2 + rng.Intn(4)
		nSeries := 1 + rng.Intn(8)
		series := make([]mergeSeries, nSeries)
		for i := range series {
			series[i] = mergeSeries{
				kind:  rng.Intn(3),
				name:  "m" + string(rune('a'+rng.Intn(4))),
				owner: rng.Intn(nShards),
			}
			// Distinct label per series index so same-named series stay
			// distinct series (ownership is per metric ID).
			series[i].labels = []Label{L("s", string(rune('0'+i)))}
			if rng.Intn(4) == 0 {
				series[i].labels = append(series[i].labels, L("extra", "x"))
			}
		}
		evs := make([]mergeEvent, 50+rng.Intn(200))
		for i := range evs {
			si := rng.Intn(nSeries)
			ev := mergeEvent{series: si}
			switch series[si].kind {
			case 0:
				ev.kind = 0
				ev.u = uint64(rng.Intn(1000))
			case 1:
				ev.kind = 1 + rng.Intn(2) // Add or Set
				ev.f = float64(rng.Intn(1<<16)) / (1 << 8)
			case 2:
				ev.kind = 3
				switch rng.Intn(4) {
				case 0: // exact bucket boundary
					ev.f = histMin * math.Pow(2, float64(rng.Intn(histBuckets)))
				case 1: // just past a boundary
					b := histMin * math.Pow(2, float64(rng.Intn(histBuckets)))
					ev.f = math.Nextafter(b, math.Inf(1))
				case 2: // below histMin / overflow region
					ev.f = []float64{0, 1e-12, 5e12, histMin}[rng.Intn(4)]
				default:
					ev.f = rng.Float64() * 10
				}
			}
			evs[i] = ev
		}

		serial := New()
		serial.Enable()
		replay(serial, series, evs)

		shards := make([]*Registry, nShards)
		for w := range shards {
			shards[w] = New()
			shards[w].Enable()
		}
		for _, ev := range evs {
			sh := shards[series[ev.series].owner]
			replay(sh, series, []mergeEvent{ev})
		}
		merged := New()
		merged.Enable()
		for _, sh := range shards {
			merged.Merge(sh)
		}

		want, got := snapshotJSON(t, serial), snapshotJSON(t, merged)
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d: merged export differs from serial accumulation\nserial: %s\nmerged: %s",
				trial, want, got)
		}
	}
}

// TestMergeSplitHistogram covers the other merge direction the simulator
// does NOT rely on but the API allows: one series split across shards.
// Count, per-bucket counts, min, and max fold exactly; the sum folds
// exactly too when the observed values are dyadic rationals (no rounding),
// which keeps the whole export byte-comparable.
func TestMergeSplitHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	serial := New()
	serial.Enable()
	a, b := New(), New()
	a.Enable()
	b.Enable()
	for i := 0; i < 500; i++ {
		v := float64(1+rng.Intn(1<<16)) / (1 << 10)
		serial.Histogram("h", L("k", "v")).Observe(v)
		if i%2 == 0 {
			a.Histogram("h", L("k", "v")).Observe(v)
		} else {
			b.Histogram("h", L("k", "v")).Observe(v)
		}
		serial.Counter("c").Inc()
		if i%2 == 0 {
			a.Counter("c").Inc()
		} else {
			b.Counter("c").Inc()
		}
	}
	merged := New()
	merged.Enable()
	merged.Merge(a)
	merged.Merge(b)
	if want, got := snapshotJSON(t, serial), snapshotJSON(t, merged); !bytes.Equal(want, got) {
		t.Fatalf("split-series merge differs:\nserial: %s\nmerged: %s", want, got)
	}
}

// TestMergeRegistersZeroSeries: merge must carry over series that exist in
// the source but never saw a nonzero update, so a parallel run exports the
// same series set as a serial run (which registers handles up front).
func TestMergeRegistersZeroSeries(t *testing.T) {
	src := New()
	src.Enable()
	src.Counter("zc")
	src.Gauge("zg")
	src.Histogram("zh", L("q", "1"))

	dst := New()
	dst.Enable()
	dst.Merge(src)
	snap := dst.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "zc" || snap.Counters[0].Value != 0 {
		t.Fatalf("zero counter not carried: %+v", snap.Counters)
	}
	if len(snap.Gauges) != 1 || snap.Gauges[0].Name != "zg" {
		t.Fatalf("zero gauge not carried: %+v", snap.Gauges)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Name != "zh" || snap.Histograms[0].Count != 0 {
		t.Fatalf("zero histogram not carried: %+v", snap.Histograms)
	}
}

// TestMergeIgnoresDisabledFlag: the engine merges shard registries after
// the default registry may have been disabled again; Merge must still move
// the data (it writes through the internals, not the gated public setters).
func TestMergeIgnoresDisabledFlag(t *testing.T) {
	src := New()
	src.Enable()
	src.Counter("c").Add(7)
	src.Histogram("h").Observe(2.0)

	dst := New() // never enabled
	dst.Merge(src)
	if got := dst.Counter("c").Value(); got != 7 {
		t.Fatalf("counter merge gated by disabled flag: got %d", got)
	}
	if got := dst.Histogram("h").Count(); got != 1 {
		t.Fatalf("histogram merge gated by disabled flag: got %d", got)
	}
}
