package obs

import (
	"strconv"
	"sync"
	"time"
)

// Span tracing is deliberately minimal: a span is a named wall-clock
// interval with string attributes. Ending a span records its duration into
// the "lemur_span_seconds" histogram (labelled by span name) and appends it
// to a bounded ring of recent spans included in JSON snapshots — enough to
// answer "what did the Placer decide, and how long did each stage take"
// without a tracing backend.

// defaultSpanRingCap bounds the recent-span ring.
const defaultSpanRingCap = 256

// SpanRecord is one finished span as it appears in a snapshot.
type SpanRecord struct {
	Name        string  `json:"name"`
	Attrs       []Label `json:"attrs,omitempty"`
	DurationSec float64 `json:"duration_sec"`
}

type spanRing struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	count int
}

func newSpanRing(capacity int) *spanRing {
	return &spanRing{buf: make([]SpanRecord, capacity)}
}

func (sr *spanRing) add(rec SpanRecord) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.buf[sr.next] = rec
	sr.next = (sr.next + 1) % len(sr.buf)
	if sr.count < len(sr.buf) {
		sr.count++
	}
}

func (sr *spanRing) reset() {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.next, sr.count = 0, 0
}

// records returns the ring contents oldest-first.
func (sr *spanRing) records() []SpanRecord {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	out := make([]SpanRecord, 0, sr.count)
	start := sr.next - sr.count
	if start < 0 {
		start += len(sr.buf)
	}
	for i := 0; i < sr.count; i++ {
		out = append(out, sr.buf[(start+i)%len(sr.buf)])
	}
	return out
}

// ActiveSpan is an in-flight span. A nil *ActiveSpan (returned when the
// registry is disabled) is valid: every method is a nil-safe no-op, so
// callers never branch on the enable state.
type ActiveSpan struct {
	reg   *Registry
	name  string
	start time.Time
	attrs []Label
}

// StartSpan begins a span, or returns nil when collection is disabled.
func (r *Registry) StartSpan(name string) *ActiveSpan {
	if r == nil || !r.on.Load() {
		return nil
	}
	return &ActiveSpan{reg: r, name: name, start: time.Now()}
}

// SetAttr attaches a string attribute; returns the span for chaining.
func (s *ActiveSpan) SetAttr(key, value string) *ActiveSpan {
	if s == nil {
		return nil
	}
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	return s
}

// SetAttrInt attaches an integer attribute.
func (s *ActiveSpan) SetAttrInt(key string, v int) *ActiveSpan {
	return s.SetAttr(key, strconv.Itoa(v))
}

// SetAttrFloat attaches a float attribute (shortest round-trip encoding).
func (s *ActiveSpan) SetAttrFloat(key string, v float64) *ActiveSpan {
	return s.SetAttr(key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SetAttrBool attaches a boolean attribute.
func (s *ActiveSpan) SetAttrBool(key string, v bool) *ActiveSpan {
	return s.SetAttr(key, strconv.FormatBool(v))
}

// End finishes the span, recording its duration histogram sample and its
// ring entry.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start).Seconds()
	s.reg.Histogram("lemur_span_seconds", L("span", s.name)).Observe(d)
	s.reg.spans.add(SpanRecord{Name: s.name, Attrs: s.attrs, DurationSec: d})
}
