// Package obs is Lemur's dependency-free observability layer: a
// goroutine-safe metrics registry (counters, gauges, bounded histograms with
// quantile estimation) plus lightweight span tracing, exported as JSON and
// Prometheus text format.
//
// Design constraints, in order:
//
//   - Near-zero cost when disabled. Every handle operation starts with one
//     atomic load of the registry's enable flag; a disabled registry does no
//     other work, so the hot layers (per-frame counters in the pisa/bess/
//     smartnic runtimes, per-step histograms in the simulator) can stay wired
//     unconditionally without moving the benchmarks.
//   - Goroutine-safe. Experiment runners place and measure concurrently
//     (experiments.Figure2Panel); all value updates are sync/atomic and
//     handle lookup takes a short RWMutex.
//   - Deterministic export. Snapshots order metrics by identity and carry no
//     timestamps, so two identical (seeded) runs serialize byte-identically —
//     the property the deterministic-simulation regression test pins down.
//
// Typical wiring hoists handles to package vars so the per-event cost is one
// atomic branch plus one atomic add:
//
//	var framesIn = obs.C("lemur_frames_total", obs.L("platform", "pisa"))
//	...
//	framesIn.Inc()
package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus-style key/value pair).
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry owns a metric namespace. The zero value is not usable; call New.
type Registry struct {
	on atomic.Bool

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    *spanRing
}

// New builds an empty, disabled registry.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    newSpanRing(defaultSpanRingCap),
	}
}

var defaultRegistry = New()

// Default returns the process-wide registry the instrumented packages use.
func Default() *Registry { return defaultRegistry }

// Enable turns metric collection on for the default registry.
func Enable() { defaultRegistry.Enable() }

// Disable turns metric collection off for the default registry.
func Disable() { defaultRegistry.Disable() }

// Reset zeroes every metric in the default registry.
func Reset() { defaultRegistry.Reset() }

// C returns (creating if needed) a counter in the default registry.
func C(name string, labels ...Label) *Counter { return defaultRegistry.Counter(name, labels...) }

// G returns (creating if needed) a gauge in the default registry.
func G(name string, labels ...Label) *Gauge { return defaultRegistry.Gauge(name, labels...) }

// H returns (creating if needed) a histogram in the default registry.
func H(name string, labels ...Label) *Histogram { return defaultRegistry.Histogram(name, labels...) }

// Span starts a span on the default registry (nil — and free — when
// collection is disabled; all Span methods are nil-safe).
func Span(name string) *ActiveSpan { return defaultRegistry.StartSpan(name) }

// Enable turns metric collection on.
func (r *Registry) Enable() { r.on.Store(true) }

// Disable turns metric collection off. Existing handles stay valid; their
// updates become no-ops.
func (r *Registry) Disable() { r.on.Store(false) }

// Enabled reports whether collection is on.
func (r *Registry) Enabled() bool { return r.on.Load() }

// Reset zeroes all counters, gauges, histograms and drops recorded spans.
// Registered handles stay valid.
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.bits.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
	r.spans.reset()
}

// metricID renders the canonical identity of a metric: name plus its sorted
// label pairs. Two handles with the same id share one time series.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// sortLabels returns a sorted copy so differently-ordered label lists
// resolve to the same series.
func sortLabels(labels []Label) []Label {
	if len(labels) <= 1 {
		return append([]Label(nil), labels...)
	}
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	reg    *Registry
	name   string
	labels []Label
	v      atomic.Uint64
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	ls := sortLabels(labels)
	id := metricID(name, ls)
	r.mu.RLock()
	c := r.counters[id]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[id]; c == nil {
		c = &Counter{reg: r, name: name, labels: ls}
		r.counters[id] = c
	}
	return c
}

// Add increments the counter by n. No-op when collection is disabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !c.reg.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float-valued metric that can move in both directions.
type Gauge struct {
	reg    *Registry
	name   string
	labels []Label
	bits   atomic.Uint64 // math.Float64bits
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	ls := sortLabels(labels)
	id := metricID(name, ls)
	r.mu.RLock()
	g := r.gauges[id]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[id]; g == nil {
		g = &Gauge{reg: r, name: name, labels: ls}
		r.gauges[id] = g
	}
	return g
}

// Set stores v. No-op when collection is disabled.
func (g *Gauge) Set(v float64) {
	if g == nil || !g.reg.on.Load() {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add moves the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil || !g.reg.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}
