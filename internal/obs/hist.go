package obs

import (
	"math"
	"sync/atomic"
)

// Histograms are bounded: a fixed array of base-2 exponential buckets
// spanning (0, histMin·2^(histBuckets-1)], roughly 1e-9 .. 2.4e12. That range
// covers every unit the system observes — queue delays in seconds, queue
// depths in packets, LP iteration counts, objective values in bits/second —
// with at most one power of two of quantile error, at a constant ~600 bytes
// per series and zero allocation per Observe.
const (
	histBuckets = 72
	histMin     = 1e-9
)

var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := range b {
		b[i] = histMin * math.Pow(2, float64(i))
	}
	return b
}()

// bucketIndex maps a sample to its bucket: bucket i covers
// (bound[i-1], bound[i]], bucket 0 covers (-inf, histMin], and values past
// the last bound land in the final (overflow) bucket.
//
// The index is ceil(log2(v/histMin)) computed exactly from the float's
// exponent via Frexp: Observe sits on the simulator's per-packet path, and
// Frexp is pure bit manipulation where Log2 is a libm call whose rounding
// can also misplace samples sitting one ulp past a power-of-two bound.
func bucketIndex(v float64) int {
	if v <= histMin {
		return 0
	}
	// v/histMin = frac * 2^exp with frac in [0.5, 1): ceil(log2) is exp-1
	// exactly at a power of two (frac == 0.5), exp otherwise.
	frac, exp := math.Frexp(v / histMin)
	i := exp
	if frac == 0.5 {
		i = exp - 1
	}
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Histogram is a bounded, atomic, exponential-bucket histogram tracking
// count, sum, min, max and bucket occupancy for quantile estimation.
type Histogram struct {
	reg    *Registry
	name   string
	labels []Label

	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Histogram returns the histogram for (name, labels), creating it on first
// use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	ls := sortLabels(labels)
	id := metricID(name, ls)
	r.mu.RLock()
	h := r.hists[id]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[id]; h == nil {
		h = &Histogram{reg: r, name: name, labels: ls}
		h.resetExtrema()
		r.hists[id] = h
	}
	return h
}

func (h *Histogram) resetExtrema() {
	h.minBits.Store(floatBits(math.Inf(1)))
	h.maxBits.Store(floatBits(math.Inf(-1)))
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sumBits.Store(0)
	h.resetExtrema()
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// Observe records one sample. No-op when collection is disabled.
func (h *Histogram) Observe(v float64) {
	if h == nil || !h.reg.on.Load() {
		return
	}
	h.count.Add(1)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= bitsFloat(old) || h.minBits.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= bitsFloat(old) || h.maxBits.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the running total of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sumBits.Load())
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observed sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return bitsFloat(h.minBits.Load())
}

// Max returns the largest observed sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return bitsFloat(h.maxBits.Load())
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear interpolation
// inside the covering bucket, clamped to the observed min/max. Accuracy is
// bounded by the bucket width (one power of two).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if cum+n >= target {
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := histBounds[i]
			frac := float64(target-cum) / float64(n)
			v := lo + (hi-lo)*frac
			// Clamp to observed extrema: buckets are coarse, min/max exact.
			if mn := h.Min(); v < mn {
				v = mn
			}
			if mx := h.Max(); v > mx {
				v = mx
			}
			return v
		}
		cum += n
	}
	return h.Max()
}

// P50 estimates the median.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P99 estimates the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
