package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeSnap is one gauge in a snapshot.
type GaugeSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// HistogramSnap is one histogram in a snapshot, summarized.
type HistogramSnap struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P99    float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of every metric, ordered by metric
// identity so identical registry states serialize byte-identically.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
	Spans      []SpanRecord    `json:"spans,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()

	sort.Slice(counters, func(i, j int) bool {
		return metricID(counters[i].name, counters[i].labels) < metricID(counters[j].name, counters[j].labels)
	})
	sort.Slice(gauges, func(i, j int) bool {
		return metricID(gauges[i].name, gauges[i].labels) < metricID(gauges[j].name, gauges[j].labels)
	})
	sort.Slice(hists, func(i, j int) bool {
		return metricID(hists[i].name, hists[i].labels) < metricID(hists[j].name, hists[j].labels)
	})

	snap := &Snapshot{
		Counters:   make([]CounterSnap, 0, len(counters)),
		Gauges:     make([]GaugeSnap, 0, len(gauges)),
		Histograms: make([]HistogramSnap, 0, len(hists)),
		Spans:      r.spans.records(),
	}
	for _, c := range counters {
		snap.Counters = append(snap.Counters, CounterSnap{Name: c.name, Labels: c.labels, Value: c.Value()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: g.name, Labels: g.labels, Value: g.Value()})
	}
	for _, h := range hists {
		snap.Histograms = append(snap.Histograms, HistogramSnap{
			Name: h.name, Labels: h.labels,
			Count: h.Count(), Sum: h.Sum(),
			Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
			P50: h.P50(), P99: h.P99(),
		})
	}
	return snap
}

// WriteJSON serializes a snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteFiles dumps the registry to jsonPath (JSON snapshot) and to the same
// path with a ".prom" extension (Prometheus text format) — the --metrics-out
// contract of cmd/lemur and cmd/lemur-bench.
func (r *Registry) WriteFiles(jsonPath string) error {
	var jb strings.Builder
	if err := r.WriteJSON(&jb); err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, []byte(jb.String()), 0o644); err != nil {
		return err
	}
	promPath := strings.TrimSuffix(jsonPath, ".json") + ".prom"
	var pb strings.Builder
	if err := r.WritePrometheus(&pb); err != nil {
		return err
	}
	return os.WriteFile(promPath, []byte(pb.String()), 0o644)
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// promLabels renders a label set (plus an optional extra label) as
// {k="v",...}, or "" when empty.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus serializes the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples, histograms
// as cumulative le-bucketed series with _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()

	// Group series by metric name so each family gets one TYPE header.
	wroteType := map[string]bool{}
	typeHeader := func(name, kind string) string {
		if wroteType[name] {
			return ""
		}
		wroteType[name] = true
		return fmt.Sprintf("# TYPE %s %s\n", name, kind)
	}

	var b strings.Builder
	for _, c := range snap.Counters {
		b.WriteString(typeHeader(c.Name, "counter"))
		fmt.Fprintf(&b, "%s%s %d\n", c.Name, promLabels(c.Labels), c.Value)
	}
	for _, g := range snap.Gauges {
		b.WriteString(typeHeader(g.Name, "gauge"))
		fmt.Fprintf(&b, "%s%s %s\n", g.Name, promLabels(g.Labels), promFloat(g.Value))
	}

	// Histograms need bucket data, re-read from the live handles in
	// snapshot (sorted) order.
	r.mu.RLock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.RUnlock()
	sort.Slice(hists, func(i, j int) bool {
		return metricID(hists[i].name, hists[i].labels) < metricID(hists[j].name, hists[j].labels)
	})
	for _, h := range hists {
		b.WriteString(typeHeader(h.name, "histogram"))
		var cum uint64
		last := -1
		for i := range h.buckets {
			if h.buckets[i].Load() > 0 {
				last = i
			}
		}
		for i := 0; i <= last; i++ {
			cum += h.buckets[i].Load()
			fmt.Fprintf(&b, "%s_bucket%s %d\n",
				h.name, promLabels(h.labels, L("le", promFloat(histBounds[i]))), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, promLabels(h.labels, L("le", "+Inf")), h.Count())
		fmt.Fprintf(&b, "%s_sum%s %s\n", h.name, promLabels(h.labels), promFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, promLabels(h.labels), h.Count())
	}
	_, err := io.WriteString(w, b.String())
	return err
}
