package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"regexp"
	"strings"
	"sync"
	"testing"
)

func newEnabled() *Registry {
	r := New()
	r.Enable()
	return r
}

func TestCounterBasics(t *testing.T) {
	r := newEnabled()
	c := r.Counter("lemur_frames_total", L("platform", "pisa"))
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same (name, labels) in any order resolves to the same series.
	c2 := r.Counter("lemur_frames_total", L("platform", "pisa"))
	if c2 != c {
		t.Fatalf("expected identical handle for identical identity")
	}
	other := r.Counter("lemur_frames_total", L("platform", "bess"))
	if other == c {
		t.Fatalf("different labels must be a different series")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := newEnabled()
	a := r.Counter("m", L("a", "1"), L("b", "2"))
	b := r.Counter("m", L("b", "2"), L("a", "1"))
	if a != b {
		t.Fatalf("label order must not create distinct series")
	}
}

func TestDisabledIsNoOp(t *testing.T) {
	r := New() // disabled
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Inc()
	g.Set(3)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded values")
	}
	if s := r.StartSpan("x"); s != nil {
		t.Fatalf("disabled registry returned non-nil span")
	}
	// Nil-span methods must be safe.
	var s *ActiveSpan
	s.SetAttr("k", "v").SetAttrInt("i", 1).SetAttrFloat("f", 2).SetAttrBool("b", true)
	s.End()
}

func TestGaugeAddCAS(t *testing.T) {
	r := newEnabled()
	g := r.Gauge("util")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("gauge = %v, want 1.0", got)
	}
}

func TestHistogramStats(t *testing.T) {
	r := newEnabled()
	h := r.Histogram("lat")
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %v", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	// Exponential buckets give at most a factor-of-2 quantile error.
	p50 := h.P50()
	if p50 < 25 || p50 > 100 {
		t.Fatalf("p50 = %v outside [25,100]", p50)
	}
	p99 := h.P99()
	if p99 < 50 || p99 > 100 {
		t.Fatalf("p99 = %v outside [50,100]", p99)
	}
	if p99 < p50 {
		t.Fatalf("p99 (%v) < p50 (%v)", p99, p50)
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	r := newEnabled()
	h := r.Histogram("one")
	h.Observe(42)
	// Clamping to observed extrema makes every quantile exact here.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Fatalf("Quantile(%v) = %v, want 42", q, got)
		}
	}
}

func TestHistogramEmptyAndTinyValues(t *testing.T) {
	r := newEnabled()
	h := r.Histogram("empty")
	if h.P50() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram stats must be zero")
	}
	h.Observe(0)           // below first bound
	h.Observe(1e-12)       // below first bound
	h.Observe(math.Inf(1)) // overflow bucket
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, v := range []float64{0, 1e-10, 1e-9, 2e-9, 1e-6, 1e-3, 1, 1e3, 1e9, 1e15} {
		i := bucketIndex(v)
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %v: %d < %d", v, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", v, i)
		}
		prev = i
	}
	// Boundary: a sample exactly on a bound falls in that bucket (le semantics).
	for i := 0; i < histBuckets; i++ {
		if got := bucketIndex(histBounds[i]); got != i {
			t.Fatalf("bucketIndex(bound[%d]) = %d", i, got)
		}
	}
}

func TestSpansRecord(t *testing.T) {
	r := newEnabled()
	sp := r.StartSpan("placer.place")
	sp.SetAttr("scheme", "Lemur").SetAttrBool("feasible", true)
	sp.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(snap.Spans))
	}
	got := snap.Spans[0]
	if got.Name != "placer.place" || len(got.Attrs) != 2 {
		t.Fatalf("bad span record: %+v", got)
	}
	if got.DurationSec < 0 {
		t.Fatalf("negative duration")
	}
	// Span durations also land in the span histogram.
	if h := r.Histogram("lemur_span_seconds", L("span", "placer.place")); h.Count() != 1 {
		t.Fatalf("span histogram count = %d", h.Count())
	}
}

func TestSpanRingBounded(t *testing.T) {
	r := newEnabled()
	for i := 0; i < defaultSpanRingCap+10; i++ {
		r.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	recs := r.spans.records()
	if len(recs) != defaultSpanRingCap {
		t.Fatalf("ring len = %d, want %d", len(recs), defaultSpanRingCap)
	}
	// Oldest-first: the first surviving record is the 10th span started.
	if recs[0].Name != "s10" {
		t.Fatalf("oldest record = %s, want s10", recs[0].Name)
	}
	if recs[len(recs)-1].Name != fmt.Sprintf("s%d", defaultSpanRingCap+9) {
		t.Fatalf("newest record = %s", recs[len(recs)-1].Name)
	}
}

func TestReset(t *testing.T) {
	r := newEnabled()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	c.Inc()
	g.Set(7)
	h.Observe(3)
	r.StartSpan("s").End()
	r.Reset()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset did not zero values")
	}
	if len(r.spans.records()) != 0 {
		t.Fatalf("reset did not drop spans")
	}
	// Handles stay live after reset.
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("handle dead after reset")
	}
	// Extrema must re-initialize, not stick at old min/max.
	h.Observe(10)
	if h.Min() != 10 || h.Max() != 10 {
		t.Fatalf("extrema not reset: min=%v max=%v", h.Min(), h.Max())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := newEnabled()
	const goroutines = 8
	const per = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c := r.Counter("par_total", L("g", fmt.Sprintf("%d", id%2)))
			h := r.Histogram("par_lat")
			g := r.Gauge("par_gauge")
			for j := 0; j < per; j++ {
				c.Inc()
				h.Observe(float64(j%17) + 0.5)
				g.Add(1)
				if j%100 == 0 {
					r.StartSpan("par.span").End()
					_ = r.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	var total uint64
	for _, cs := range r.Snapshot().Counters {
		if cs.Name == "par_total" {
			total += cs.Value
		}
	}
	if total != goroutines*per {
		t.Fatalf("counter total = %d, want %d", total, goroutines*per)
	}
	if n := r.Histogram("par_lat").Count(); n != goroutines*per {
		t.Fatalf("histogram count = %d, want %d", n, goroutines*per)
	}
	if v := r.Gauge("par_gauge").Value(); v != goroutines*per {
		t.Fatalf("gauge = %v, want %d", v, goroutines*per)
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	run := func() []byte {
		r := newEnabled()
		// Create in scrambled order; snapshot must sort.
		r.Counter("z_total").Add(1)
		r.Counter("a_total", L("p", "x")).Add(2)
		r.Counter("a_total", L("p", "b")).Add(3)
		r.Gauge("g2").Set(1.25)
		r.Gauge("g1").Set(-4)
		r.Histogram("h", L("k", "v")).Observe(2)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots differ:\n%s\n---\n%s", a, b)
	}
	var snap Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(snap.Counters) != 3 || len(snap.Gauges) != 2 || len(snap.Histograms) != 1 {
		t.Fatalf("unexpected snapshot shape: %+v", snap)
	}
	// Sorted by identity: a_total{p=b} < a_total{p=x} < z_total.
	if snap.Counters[0].Value != 3 || snap.Counters[1].Value != 2 || snap.Counters[2].Value != 1 {
		t.Fatalf("counters not sorted by identity: %+v", snap.Counters)
	}
}

// promLine matches a sample line of the text exposition format.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [^ ]+$`)

func TestWritePrometheusFormat(t *testing.T) {
	r := newEnabled()
	r.Counter("lemur_frames_total", L("platform", "pisa")).Add(10)
	r.Counter("lemur_frames_total", L("platform", "bess")).Add(20)
	r.Gauge("lemur_compile_lines", L("kind", "p4")).Set(123)
	h := r.Histogram("lemur_queue_delay_seconds", L("subgroup", "sg0"))
	for i := 0; i < 50; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()

	typeCount := map[string]int{}
	var lastCum uint64
	var sawInf, sawSum, sawCount bool
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typeCount[parts[2]]++
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		if strings.HasPrefix(line, "lemur_queue_delay_seconds_bucket") {
			if !strings.Contains(line, `le="`) {
				t.Fatalf("bucket line missing le label: %q", line)
			}
			var v uint64
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v)
			if v < lastCum {
				t.Fatalf("bucket counts not cumulative: %q after %d", line, lastCum)
			}
			lastCum = v
			if strings.Contains(line, `le="+Inf"`) {
				sawInf = true
				if v != 50 {
					t.Fatalf("+Inf bucket = %d, want 50", v)
				}
			}
		}
		if strings.HasPrefix(line, "lemur_queue_delay_seconds_sum") {
			sawSum = true
		}
		if strings.HasPrefix(line, "lemur_queue_delay_seconds_count ") ||
			strings.HasPrefix(line, "lemur_queue_delay_seconds_count{") {
			sawCount = true
		}
	}
	// One TYPE header per family even with multiple label sets.
	if typeCount["lemur_frames_total"] != 1 {
		t.Fatalf("lemur_frames_total TYPE headers = %d", typeCount["lemur_frames_total"])
	}
	if !sawInf || !sawSum || !sawCount {
		t.Fatalf("histogram output incomplete: inf=%v sum=%v count=%v\n%s", sawInf, sawSum, sawCount, out)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "a\\b\"c\nd"
	want := `a\\b\"c\nd`
	if got := escapeLabelValue(in); got != want {
		t.Fatalf("escape = %q, want %q", got, want)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	Reset()
	Enable()
	defer func() { Disable(); Reset() }()
	C("default_c").Inc()
	G("default_g").Set(2)
	H("default_h").Observe(1)
	sp := Span("default.span")
	if sp == nil {
		t.Fatalf("Span returned nil while enabled")
	}
	sp.End()
	if Default().Counter("default_c").Value() != 1 {
		t.Fatalf("package-level helpers not wired to default registry")
	}
}

// TestBucketIndexMatchesDefinition: the Frexp-based index must agree with a
// direct scan of the bucket bounds — the semantic definition of "bucket i
// covers (bound[i-1], bound[i]]" — across log-uniform random samples, exact
// powers of two, and their one-ulp neighbors where a libm Log2 can misround.
func TestBucketIndexMatchesDefinition(t *testing.T) {
	scanIndex := func(v float64) int {
		for i := 0; i < histBuckets; i++ {
			if v <= histBounds[i] {
				return i
			}
		}
		return histBuckets - 1
	}
	check := func(v float64) {
		if got, want := bucketIndex(v), scanIndex(v); got != want {
			t.Fatalf("bucketIndex(%g) = %d, scan says %d", v, got, want)
		}
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 20000; i++ {
		// Log-uniform across the full range plus both overflow directions.
		check(histMin * math.Pow(2, rng.Float64()*80-4))
	}
	for i := 0; i < histBuckets; i++ {
		b := histMin * math.Pow(2, float64(i))
		check(b)
		check(math.Nextafter(b, 0))
		check(math.Nextafter(b, math.Inf(1)))
	}
}
