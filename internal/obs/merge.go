package obs

import (
	"sort"
	"sync/atomic"
)

// Merge folds every metric of src into r, creating series in r as needed.
// It is the reduction step for sharded collection: workers accumulate into
// private registries and the coordinator merges them back into the shared
// one when the run finishes.
//
// Merge is deterministic and exact in the sense the parallel simulator
// needs: series are visited in sorted metric-identity order, counters and
// histogram counts/buckets add integerwise, and a histogram's float sum is
// folded with a single addition per source series — so when every series is
// wholly owned by one shard (src holds the only observations, r holds
// none), the merged state is bit-identical to having observed the same
// sequence on r directly. Gauges add their values (a shard-local gauge is a
// delta); spans are not merged. Merge writes through r's enable flag — a
// disabled destination still receives the series and their values, matching
// the semantics of registration (which also ignores the flag).
//
// Merge is not safe to run concurrently with updates to src.
func (r *Registry) Merge(src *Registry) {
	if src == nil || src == r {
		return
	}
	src.mu.RLock()
	cids := make([]string, 0, len(src.counters))
	for id := range src.counters {
		cids = append(cids, id)
	}
	gids := make([]string, 0, len(src.gauges))
	for id := range src.gauges {
		gids = append(gids, id)
	}
	hids := make([]string, 0, len(src.hists))
	for id := range src.hists {
		hids = append(hids, id)
	}
	src.mu.RUnlock()
	sort.Strings(cids)
	sort.Strings(gids)
	sort.Strings(hids)

	for _, id := range cids {
		src.mu.RLock()
		c := src.counters[id]
		src.mu.RUnlock()
		dst := r.Counter(c.name, c.labels...)
		if v := c.v.Load(); v != 0 {
			dst.v.Add(v)
		}
	}
	for _, id := range gids {
		src.mu.RLock()
		g := src.gauges[id]
		src.mu.RUnlock()
		dst := r.Gauge(g.name, g.labels...)
		if v := bitsFloat(g.bits.Load()); v != 0 {
			addFloatBits(&dst.bits, v)
		}
	}
	for _, id := range hids {
		src.mu.RLock()
		h := src.hists[id]
		src.mu.RUnlock()
		r.Histogram(h.name, h.labels...).Merge(h)
	}
}

// Merge folds src's samples into h: counts and buckets add, the sum is
// folded with one addition, and min/max extend h's extrema. A src with no
// samples leaves h untouched (beyond series registration by the caller).
// Merge bypasses the enable flag like Registry.Merge, and is not safe to
// run concurrently with Observe on src.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src == h {
		return
	}
	n := src.count.Load()
	if n == 0 {
		return
	}
	h.count.Add(n)
	for i := range src.buckets {
		if b := src.buckets[i].Load(); b != 0 {
			h.buckets[i].Add(b)
		}
	}
	addFloatBits(&h.sumBits, bitsFloat(src.sumBits.Load()))
	for {
		old := h.minBits.Load()
		v := bitsFloat(src.minBits.Load())
		if v >= bitsFloat(old) || h.minBits.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		v := bitsFloat(src.maxBits.Load())
		if v <= bitsFloat(old) || h.maxBits.CompareAndSwap(old, floatBits(v)) {
			break
		}
	}
}

// addFloatBits CAS-adds delta to a float64 stored as bits.
func addFloatBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}
