package p4

import (
	"errors"
	"strings"
	"testing"

	"lemur/internal/hw"
	"lemur/internal/nf"
)

func TestParseProgram(t *testing.T) {
	prog, err := ParseProgram(`
# a comment
nf demo {
  headers { ethernet, ipv4, tcp }
  parser {
    ethernet select ethertype { 0x0800 -> ipv4 }
    ipv4 select proto { 6 -> tcp  default -> accept }
    tcp { -> accept }
  }
  table t1 {
    keys { ipv4.src }
    actions { a, b }
    size 100
    sram 3
    tcam 1
  }
  control { t1 }
}`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" || len(prog.Headers) != 3 {
		t.Errorf("prog = %+v", prog)
	}
	if len(prog.Tables) != 1 || prog.Tables[0].SRAM != 3 || prog.Tables[0].TCAM != 1 || prog.Tables[0].Size != 100 {
		t.Errorf("table = %+v", prog.Tables[0])
	}
	st := prog.Parser.States["ipv4"]
	if st == nil || st.SelectField != "proto" || len(st.Transitions) != 2 {
		t.Fatalf("ipv4 state = %+v", st)
	}
	if st.Transitions[1].Value != "default" || st.Transitions[1].Next != Accept {
		t.Errorf("default transition = %+v", st.Transitions[1])
	}
}

func TestParseProgramErrors(t *testing.T) {
	bad := []string{
		"",
		"nf {",
		"nf x { headers { nosuchheader } }",
		"nf x { bogussection { } }",
		"nf x { headers { ipv4 } parser { ethernet { -> accept } } }",      // undeclared header in parser
		"nf x { headers { ethernet } control { ghost } }",                  // unknown table in control
		"nf x { headers { ethernet } table t { sram abc } }",               // bad number
		"nf x { headers { ethernet } table t { wat 1 } }",                  // unknown attr
		"nf x { headers { ethernet } parser { ethernet { -> missing } } }", // dangling transition
		"nf x { headers { ethernet } table t { } table t { } }",            // duplicate table
		"nf x @",
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("ParseProgram(%.40q) succeeded, want error", src)
		}
	}
}

func TestLibraryMatchesRegistry(t *testing.T) {
	// Every NF with a PISA implementation in the registry must have a P4
	// source in the library, with matching memory footprints.
	for _, class := range nf.Classes() {
		meta := nf.Registry[class]
		hasP4 := meta.SupportsPlatform(hw.PISA)
		prog, inLib := Library[class]
		if hasP4 != inLib {
			t.Errorf("%s: PISA support %v but library presence %v", class, hasP4, inLib)
			continue
		}
		if !hasP4 {
			continue
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: invalid library program: %v", class, err)
		}
		var sram, tcam, tables int
		for _, tb := range prog.Tables {
			sram += tb.SRAM
			tcam += tb.TCAM
			tables++
		}
		if tables != meta.PISA.Tables || sram != meta.PISA.SRAM*meta.PISA.Tables || tcam != meta.PISA.TCAM*meta.PISA.Tables {
			t.Errorf("%s: library tables=%d sram=%d tcam=%d, registry profile %+v",
				class, tables, sram, tcam, *meta.PISA)
		}
	}
}

func TestMergeUnion(t *testing.T) {
	acl := Library["ACL"].Parser.Clone()
	tun := Library["Tunnel"].Parser.Clone()
	g := NewGraph()
	if err := g.Merge(acl); err != nil {
		t.Fatal(err)
	}
	if err := g.Merge(tun); err != nil {
		t.Fatal(err)
	}
	eth := g.States["ethernet"]
	if eth == nil {
		t.Fatal("no ethernet state")
	}
	// Union: ACL contributes 0x0800->ipv4, Tunnel adds 0x8100->vlan.
	vals := map[string]string{}
	for _, tr := range eth.Transitions {
		vals[tr.Value] = tr.Next
	}
	if vals["0x0800"] != "ipv4" || vals["0x8100"] != "vlan" {
		t.Errorf("ethernet transitions = %v", vals)
	}
	// ipv4 state keeps ACL's proto select plus Tunnel's default accept.
	if g.States["ipv4"].SelectField != "proto" {
		t.Errorf("ipv4 select = %q", g.States["ipv4"].SelectField)
	}
	hs := g.Headers()
	if len(hs) < 5 {
		t.Errorf("merged headers = %v", hs)
	}
}

func TestMergeConflict(t *testing.T) {
	a := NewGraph()
	a.States["ethernet"] = &State{Header: "ethernet", SelectField: "ethertype",
		Transitions: []Transition{{Value: "0x1234", Next: "ipv4"}}}
	a.States["ipv4"] = &State{Header: "ipv4"}

	b := NewGraph()
	b.States["ethernet"] = &State{Header: "ethernet", SelectField: "ethertype",
		Transitions: []Transition{{Value: "0x1234", Next: "vlan"}}}
	b.States["vlan"] = &State{Header: "vlan"}

	if err := a.Merge(b); !errors.Is(err, ErrParserConflict) {
		t.Errorf("err = %v, want ErrParserConflict", err)
	}

	// Select-field disagreement is also a conflict.
	c := NewGraph()
	c.States["ethernet"] = &State{Header: "ethernet", SelectField: "src",
		Transitions: []Transition{{Value: "1", Next: Accept}}}
	d := NewGraph()
	d.States["ethernet"] = &State{Header: "ethernet", SelectField: "ethertype"}
	if err := c.Merge(d); !errors.Is(err, ErrParserConflict) {
		t.Errorf("select conflict: err = %v", err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	g := NewGraph()
	if err := g.Merge(Library["NAT"].Parser); err != nil {
		t.Fatal(err)
	}
	before := len(g.States["ethernet"].Transitions)
	if err := g.Merge(Library["NAT"].Parser); err != nil {
		t.Fatal(err)
	}
	if got := len(g.States["ethernet"].Transitions); got != before {
		t.Errorf("re-merge duplicated transitions: %d -> %d", before, got)
	}
}

func TestMangle(t *testing.T) {
	m := Library["ACL"].Mangle("ACL0")
	if m.Tables[0].Name != "ACL0_acl_tbl" {
		t.Errorf("mangled table = %q", m.Tables[0].Name)
	}
	if m.Control[0] != "ACL0_acl_tbl" {
		t.Errorf("mangled control = %q", m.Control[0])
	}
	// Original untouched.
	if Library["ACL"].Tables[0].Name != "acl_tbl" {
		t.Error("mangle mutated the library program")
	}
	// Mutating the clone's slices must not leak back.
	m.Tables[0].Keys[0] = "zzz"
	if Library["ACL"].Tables[0].Keys[0] == "zzz" {
		t.Error("mangle shares key slices with the library")
	}
}

func TestHeaderLibraryWidths(t *testing.T) {
	widths := map[string]int{
		"ethernet": 112, "vlan": 32, "nsh": 64, "ipv4": 160, "tcp": 160, "udp": 64,
	}
	for name, want := range widths {
		h, ok := HeaderLibrary[name]
		if !ok {
			t.Errorf("header %q missing", name)
			continue
		}
		if got := h.Bits(); got != want {
			t.Errorf("%s width = %d bits, want %d", name, got, want)
		}
	}
}

func TestValidateCatchesBadControl(t *testing.T) {
	p := &Program{Name: "x", Headers: []string{"ethernet"}, Control: []string{"ghost"}}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("err = %v", err)
	}
}
