package p4

// Library holds the standalone P4 NF sources for every NF with a PISA
// implementation (Table 3's P4 column), written in Lemur's extended-P4
// dialect and parsed at init. The per-table sram/tcam figures match the
// registry's PISAProfile entries; TestLibraryMatchesRegistry enforces this.
var Library = map[string]*Program{}

var librarySources = map[string]string{
	"ACL": `
nf acl {
  headers { ethernet, ipv4, tcp, udp }
  parser {
    ethernet select ethertype { 0x0800 -> ipv4 }
    ipv4 select proto { 6 -> tcp  17 -> udp  default -> accept }
    tcp { -> accept }
    udp { -> accept }
  }
  table acl_tbl {
    keys { ipv4.src, ipv4.dst }
    actions { permit, deny }
    size 1024
    sram 1
    tcam 2
  }
  control { acl_tbl }
}`,
	"NAT": `
nf nat {
  headers { ethernet, ipv4, tcp, udp }
  parser {
    ethernet select ethertype { 0x0800 -> ipv4 }
    ipv4 select proto { 6 -> tcp  17 -> udp  default -> accept }
    tcp { -> accept }
    udp { -> accept }
  }
  table nat_tbl {
    keys { ipv4.src, tcp.sport }
    actions { rewrite_src, rewrite_dst, drop }
    size 12000
    sram 12
  }
  control { nat_tbl }
}`,
	"LB": `
nf lb {
  headers { ethernet, ipv4, tcp, udp }
  parser {
    ethernet select ethertype { 0x0800 -> ipv4 }
    ipv4 select proto { 6 -> tcp  17 -> udp  default -> accept }
    tcp { -> accept }
    udp { -> accept }
  }
  table lb_tbl {
    keys { ipv4.src, ipv4.dst, tcp.sport, tcp.dport }
    actions { set_backend }
    size 2048
    sram 2
  }
  control { lb_tbl }
}`,
	"Match": `
nf match {
  headers { ethernet, ipv4, tcp, udp }
  parser {
    ethernet select ethertype { 0x0800 -> ipv4 }
    ipv4 select proto { 6 -> tcp  17 -> udp  default -> accept }
    tcp { -> accept }
    udp { -> accept }
  }
  table match_tbl {
    keys { ipv4.src, ipv4.dst, ipv4.proto }
    actions { set_class, drop }
    size 512
    sram 1
    tcam 1
  }
  control { match_tbl }
}`,
	"Tunnel": `
nf tunnel {
  headers { ethernet, vlan, ipv4 }
  parser {
    ethernet select ethertype { 0x8100 -> vlan  0x0800 -> ipv4 }
    vlan select ethertype { 0x0800 -> ipv4 }
    ipv4 { -> accept }
  }
  table tunnel_tbl {
    keys { ethernet.ethertype }
    actions { push_vlan }
    size 16
    sram 1
  }
  control { tunnel_tbl }
}`,
	"Detunnel": `
nf detunnel {
  headers { ethernet, vlan, ipv4 }
  parser {
    ethernet select ethertype { 0x8100 -> vlan  0x0800 -> ipv4 }
    vlan select ethertype { 0x0800 -> ipv4 }
    ipv4 { -> accept }
  }
  table detunnel_tbl {
    keys { vlan.vid }
    actions { pop_vlan }
    size 16
    sram 1
  }
  control { detunnel_tbl }
}`,
	"IPv4Fwd": `
nf ipv4fwd {
  headers { ethernet, ipv4 }
  parser {
    ethernet select ethertype { 0x0800 -> ipv4 }
    ipv4 { -> accept }
  }
  table fwd_tbl {
    keys { ipv4.dst }
    actions { set_egress, drop }
    size 4096
    sram 2
    tcam 1
  }
  control { fwd_tbl }
}`,
}

func init() {
	for class, src := range librarySources {
		Library[class] = MustParseProgram(src)
	}
}

// LibrarySource returns the hand-written extended-P4 source for an NF class
// ("" if it has none). The meta-compiler's LoC accounting uses it to split
// human-authored from auto-generated code (§5.3).
func LibrarySource(class string) string { return librarySources[class] }
