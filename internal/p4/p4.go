// Package p4 models standalone P4 NFs the way Lemur's meta-compiler consumes
// them (§4.2, §A.2): each NF declares the headers it uses (drawn from a
// shared header library), an NF-local parse graph, and its match/action
// tables. The package provides the minimally-extended-P4 text format parser
// and the parser-merging algorithm (§A.2.1) that unifies NF-local parse
// graphs into one switch parser, rejecting co-placements with conflicting
// transitions.
package p4

import (
	"errors"
	"fmt"
	"sort"
)

// Field is one header field.
type Field struct {
	Name string
	Bits int
}

// Header is a packet header layout.
type Header struct {
	Name   string
	Fields []Field
}

// Bits returns the total header width.
func (h *Header) Bits() int {
	n := 0
	for _, f := range h.Fields {
		n += f.Bits
	}
	return n
}

// HeaderLibrary is the predefined (extensible) set of headers NF developers
// draw from, so independently-written NFs agree on layouts (§4.2).
var HeaderLibrary = map[string]*Header{
	"ethernet": {Name: "ethernet", Fields: []Field{
		{"dst", 48}, {"src", 48}, {"ethertype", 16}}},
	"vlan": {Name: "vlan", Fields: []Field{
		{"pcp", 3}, {"dei", 1}, {"vid", 12}, {"ethertype", 16}}},
	"nsh": {Name: "nsh", Fields: []Field{
		{"flags", 16}, {"mdtype", 8}, {"nextproto", 8}, {"spi", 24}, {"si", 8}}},
	"ipv4": {Name: "ipv4", Fields: []Field{
		{"version", 4}, {"ihl", 4}, {"tos", 8}, {"len", 16}, {"id", 16},
		{"frag", 16}, {"ttl", 8}, {"proto", 8}, {"csum", 16},
		{"src", 32}, {"dst", 32}}},
	"tcp": {Name: "tcp", Fields: []Field{
		{"sport", 16}, {"dport", 16}, {"seq", 32}, {"ack", 32},
		{"off", 4}, {"rsvd", 4}, {"flags", 8}, {"win", 16}, {"csum", 16}, {"urg", 16}}},
	"udp": {Name: "udp", Fields: []Field{
		{"sport", 16}, {"dport", 16}, {"len", 16}, {"csum", 16}}},
}

// Accept is the terminal parse state.
const Accept = "accept"

// Transition is one edge of a parse graph: if the select field equals Value,
// parse Next next. Value "default" is the fallthrough.
type Transition struct {
	Value string
	Next  string
}

// State is one parse state, keyed by the header it extracts.
type State struct {
	Header      string
	SelectField string // e.g. "ethertype"; empty means unconditional default
	Transitions []Transition
}

// Graph is an NF-local (or unified) parse graph rooted at Start.
type Graph struct {
	Start  string
	States map[string]*State
}

// NewGraph returns an empty graph rooted at ethernet.
func NewGraph() *Graph {
	return &Graph{Start: "ethernet", States: make(map[string]*State)}
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{Start: g.Start, States: make(map[string]*State, len(g.States))}
	for name, st := range g.States {
		cp := &State{Header: st.Header, SelectField: st.SelectField}
		cp.Transitions = append(cp.Transitions, st.Transitions...)
		out.States[name] = cp
	}
	return out
}

// ErrParserConflict signals that two NFs' parse graphs disagree and cannot be
// co-placed on the switch (§A.2.1).
var ErrParserConflict = errors.New("p4: conflicting parser transitions")

// Merge unifies other into g: at every parse state it takes the union of
// next-header choices, integrating unseen transitions and states. A
// transition whose (state, select value) exists in both graphs but leads to
// different headers is a conflict.
func (g *Graph) Merge(other *Graph) error {
	if g.Start != other.Start {
		return fmt.Errorf("%w: roots %q vs %q", ErrParserConflict, g.Start, other.Start)
	}
	for name, ost := range other.States {
		st, ok := g.States[name]
		if !ok {
			cp := &State{Header: ost.Header, SelectField: ost.SelectField}
			cp.Transitions = append(cp.Transitions, ost.Transitions...)
			g.States[name] = cp
			continue
		}
		if st.Header != ost.Header {
			return fmt.Errorf("%w: state %q extracts %q vs %q",
				ErrParserConflict, name, st.Header, ost.Header)
		}
		if st.SelectField != "" && ost.SelectField != "" && st.SelectField != ost.SelectField {
			return fmt.Errorf("%w: state %q selects on %q vs %q",
				ErrParserConflict, name, st.SelectField, ost.SelectField)
		}
		if st.SelectField == "" {
			st.SelectField = ost.SelectField
		}
		for _, tr := range ost.Transitions {
			found := false
			for _, have := range st.Transitions {
				if have.Value == tr.Value {
					if have.Next != tr.Next {
						return fmt.Errorf("%w: state %q value %q -> %q vs %q",
							ErrParserConflict, name, tr.Value, have.Next, tr.Next)
					}
					found = true
					break
				}
			}
			if !found {
				st.Transitions = append(st.Transitions, tr)
			}
		}
	}
	return nil
}

// Headers returns the sorted set of headers reachable in the graph.
func (g *Graph) Headers() []string {
	set := map[string]bool{}
	for name, st := range g.States {
		set[name] = true
		_ = st
	}
	out := make([]string, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// Table is one match/action table of a standalone NF.
type Table struct {
	Name    string
	Keys    []string // "header.field" match keys
	Actions []string
	Size    int // entries
	SRAM    int // memory blocks
	TCAM    int
}

// Program is a standalone P4 NF: headers, NF-local parser, tables, and the
// control order in which its tables apply.
type Program struct {
	Name    string
	Headers []string
	Parser  *Graph
	Tables  []Table
	Control []string // table names in application order
}

// Validate checks internal consistency: headers exist in the library, parser
// states reference declared headers, control references declared tables.
func (p *Program) Validate() error {
	declared := map[string]bool{}
	for _, h := range p.Headers {
		if _, ok := HeaderLibrary[h]; !ok {
			return fmt.Errorf("p4: %s: unknown header %q (extend HeaderLibrary)", p.Name, h)
		}
		declared[h] = true
	}
	if p.Parser != nil {
		for name, st := range p.Parser.States {
			if !declared[st.Header] {
				return fmt.Errorf("p4: %s: parser state %q extracts undeclared header %q",
					p.Name, name, st.Header)
			}
			for _, tr := range st.Transitions {
				if tr.Next != Accept {
					if _, ok := p.Parser.States[tr.Next]; !ok {
						return fmt.Errorf("p4: %s: state %q transitions to missing state %q",
							p.Name, name, tr.Next)
					}
				}
			}
		}
	}
	tables := map[string]bool{}
	for _, t := range p.Tables {
		if tables[t.Name] {
			return fmt.Errorf("p4: %s: duplicate table %q", p.Name, t.Name)
		}
		tables[t.Name] = true
	}
	for _, c := range p.Control {
		if !tables[c] {
			return fmt.Errorf("p4: %s: control applies unknown table %q", p.Name, c)
		}
	}
	return nil
}

// Mangle returns a copy with tables renamed <instance>_<table>, the name
// mangling the meta-compiler applies to keep NF instances unique in the
// unified program.
func (p *Program) Mangle(instance string) *Program {
	out := &Program{Name: instance, Headers: append([]string{}, p.Headers...)}
	if p.Parser != nil {
		out.Parser = p.Parser.Clone()
	}
	for _, t := range p.Tables {
		t2 := t
		t2.Name = instance + "_" + t.Name
		t2.Keys = append([]string{}, t.Keys...)
		t2.Actions = append([]string{}, t.Actions...)
		out.Tables = append(out.Tables, t2)
	}
	for _, c := range p.Control {
		out.Control = append(out.Control, instance+"_"+c)
	}
	return out
}
