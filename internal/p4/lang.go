package p4

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseProgram parses Lemur's minimally-extended P4 dialect for standalone
// NFs. The grammar (whitespace-insensitive, comments start with '#'):
//
//	nf <name> {
//	  headers { ethernet, ipv4, tcp }
//	  parser {
//	    ethernet select ethertype { 0x8100 -> vlan  0x0800 -> ipv4 }
//	    ipv4 select proto { 6 -> tcp  default -> accept }
//	    tcp { -> accept }
//	  }
//	  table <tname> {
//	    keys { ipv4.src, ipv4.dst }
//	    actions { permit, deny }
//	    size 1024
//	    sram 1
//	    tcam 2
//	  }
//	  control { <tname>, ... }
//	}
//
// Parse states are named by the header they extract; the start state is
// ethernet.
func ParseProgram(src string) (*Program, error) {
	lx := &lexer{src: src}
	toks, err := lx.run()
	if err != nil {
		return nil, err
	}
	pp := &progParser{toks: toks}
	prog, err := pp.parse()
	if err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParseProgram panics on parse failure (for built-in library sources).
func MustParseProgram(src string) *Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) run() ([]string, error) {
	var toks []string
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case unicode.IsSpace(rune(c)) || c == ',':
			l.pos++
		case c == '{' || c == '}':
			toks = append(toks, string(c))
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '>':
			toks = append(toks, "->")
			l.pos += 2
		case isWordByte(c):
			j := l.pos
			for j < len(l.src) && isWordByte(l.src[j]) {
				j++
			}
			toks = append(toks, l.src[l.pos:j])
			l.pos = j
		default:
			return nil, fmt.Errorf("p4: unexpected character %q at offset %d", c, l.pos)
		}
	}
	return toks, nil
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '.' || c == 'x'
}

type progParser struct {
	toks []string
	pos  int
}

func (p *progParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *progParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *progParser) expect(want string) error {
	if got := p.next(); got != want {
		return fmt.Errorf("p4: expected %q, got %q (token %d)", want, got, p.pos-1)
	}
	return nil
}

func (p *progParser) parse() (*Program, error) {
	if err := p.expect("nf"); err != nil {
		return nil, err
	}
	prog := &Program{Name: p.next(), Parser: NewGraph()}
	if prog.Name == "" || prog.Name == "{" {
		return nil, fmt.Errorf("p4: missing nf name")
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for p.peek() != "}" && p.peek() != "" {
		switch kw := p.next(); kw {
		case "headers":
			list, err := p.braceList()
			if err != nil {
				return nil, err
			}
			prog.Headers = list
		case "parser":
			if err := p.parseParser(prog); err != nil {
				return nil, err
			}
		case "table":
			if err := p.parseTable(prog); err != nil {
				return nil, err
			}
		case "control":
			list, err := p.braceList()
			if err != nil {
				return nil, err
			}
			prog.Control = list
		default:
			return nil, fmt.Errorf("p4: unknown section %q", kw)
		}
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *progParser) braceList() ([]string, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []string
	for p.peek() != "}" {
		t := p.next()
		if t == "" {
			return nil, fmt.Errorf("p4: unterminated list")
		}
		out = append(out, t)
	}
	p.next() // consume }
	return out, nil
}

func (p *progParser) parseParser(prog *Program) error {
	if err := p.expect("{"); err != nil {
		return err
	}
	for p.peek() != "}" {
		header := p.next()
		if header == "" {
			return fmt.Errorf("p4: unterminated parser block")
		}
		st := &State{Header: header}
		if p.peek() == "select" {
			p.next()
			st.SelectField = p.next()
		}
		if err := p.expect("{"); err != nil {
			return err
		}
		for p.peek() != "}" {
			var value string
			if p.peek() != "->" {
				value = p.next()
			} else {
				value = "default"
			}
			if err := p.expect("->"); err != nil {
				return err
			}
			st.Transitions = append(st.Transitions, Transition{Value: value, Next: p.next()})
		}
		p.next() // }
		prog.Parser.States[header] = st
	}
	p.next() // }
	return nil
}

func (p *progParser) parseTable(prog *Program) error {
	t := Table{Name: p.next(), Size: 1024}
	if err := p.expect("{"); err != nil {
		return err
	}
	for p.peek() != "}" {
		switch kw := p.next(); kw {
		case "keys":
			list, err := p.braceList()
			if err != nil {
				return err
			}
			t.Keys = list
		case "actions":
			list, err := p.braceList()
			if err != nil {
				return err
			}
			t.Actions = list
		case "size", "sram", "tcam":
			v, err := strconv.Atoi(p.next())
			if err != nil {
				return fmt.Errorf("p4: table %s: bad %s: %w", t.Name, kw, err)
			}
			switch kw {
			case "size":
				t.Size = v
			case "sram":
				t.SRAM = v
			case "tcam":
				t.TCAM = v
			}
		default:
			return fmt.Errorf("p4: table %s: unknown attribute %q", t.Name, kw)
		}
	}
	p.next() // }
	if strings.TrimSpace(t.Name) == "" {
		return fmt.Errorf("p4: table without a name")
	}
	prog.Tables = append(prog.Tables, t)
	return nil
}
