package nsh

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lemur/internal/packet"
)

// In-place encap/decap variants for the simulator's zero-allocation fast
// path. They produce frames byte-identical to Encap/Decap but reuse the
// caller's buffer instead of allocating:
//
//   - EncapInPlace / DecapInPlace grow or shrink the frame at its tail,
//     memmoving the payload and preserving the buffer base pointer so pooled
//     buffers keep their capacity across recycles.
//   - DecapShift / EncapShift exploit that only the short L2 header sits in
//     front of the NSH header: decap slides the 14-18 L2 bytes right over the
//     NSH header (the inner frame aliases frame[NSHLen:]) and encap slides
//     them back, so a server hop never copies the packet payload at all.

// EncapInPlace inserts an NSH header like Encap but reuses frame's backing
// array when its capacity allows, shifting the L3 payload right by NSHLen.
// The returned slice shares frame's base pointer unless a grow was needed.
func EncapInPlace(frame []byte, spi uint32, si uint8) ([]byte, error) {
	if spi > MaxSPI {
		return nil, fmt.Errorf("nsh: encap: SPI %#x exceeds 24 bits", spi)
	}
	etOff, hdrOff, err := tagOffset(frame)
	if err != nil {
		return nil, fmt.Errorf("nsh: encap: %w", err)
	}
	switch et := binary.BigEndian.Uint16(frame[etOff:]); et {
	case packet.EtherTypeNSH:
		return nil, errors.New("nsh: encap: frame already encapsulated")
	case packet.EtherTypeIPv4:
	default:
		return nil, fmt.Errorf("nsh: encap: inner ethertype %#x unsupported", et)
	}
	n := len(frame)
	var out []byte
	if cap(frame) >= n+packet.NSHLen {
		out = frame[:n+packet.NSHLen]
	} else {
		out = make([]byte, n+packet.NSHLen)
		copy(out, frame[:hdrOff])
	}
	copy(out[hdrOff+packet.NSHLen:], frame[hdrOff:n])
	binary.BigEndian.PutUint16(out[etOff:], packet.EtherTypeNSH)
	putBaseHeader(out[hdrOff:], spi, si)
	return out, nil
}

// DecapInPlace strips the NSH header like Decap but shifts the payload left
// within frame's backing array: the returned slice shares frame's base
// pointer (and therefore its full capacity), which keeps pooled buffers
// reusable for a later in-place re-encap.
func DecapInPlace(frame []byte) (out []byte, spi uint32, si uint8, err error) {
	etOff, hdrOff, err := tagOffset(frame)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("nsh: decap: %w", err)
	}
	if binary.BigEndian.Uint16(frame[etOff:]) != packet.EtherTypeNSH ||
		len(frame) < hdrOff+packet.NSHLen {
		return nil, 0, 0, ErrNotEncapped
	}
	sp := binary.BigEndian.Uint32(frame[hdrOff+4:])
	spi, si = sp>>8, uint8(sp)
	binary.BigEndian.PutUint16(frame[etOff:], packet.EtherTypeIPv4)
	copy(frame[hdrOff:], frame[hdrOff+packet.NSHLen:])
	return frame[:len(frame)-packet.NSHLen], spi, si, nil
}

// DecapShift strips the NSH header by sliding the L2 header right over it:
// the inner frame aliases frame[NSHLen:], so the L3 payload is never copied.
// Pair with EncapShift on the same backing array to round-trip a server hop
// with two small header moves and zero allocations.
func DecapShift(frame []byte) (inner []byte, spi uint32, si uint8, err error) {
	etOff, hdrOff, err := tagOffset(frame)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("nsh: decap: %w", err)
	}
	if binary.BigEndian.Uint16(frame[etOff:]) != packet.EtherTypeNSH ||
		len(frame) < hdrOff+packet.NSHLen {
		return nil, 0, 0, ErrNotEncapped
	}
	sp := binary.BigEndian.Uint32(frame[hdrOff+4:])
	spi, si = sp>>8, uint8(sp)
	copy(frame[packet.NSHLen:hdrOff+packet.NSHLen], frame[:hdrOff])
	inner = frame[packet.NSHLen:]
	binary.BigEndian.PutUint16(inner[etOff:], packet.EtherTypeIPv4)
	return inner, spi, si, nil
}

// EncapShift re-encapsulates after a DecapShift: full[NSHLen:] must hold a
// plain (decapped) frame whose L2 header EncapShift slides back to the front
// of full before writing a fresh NSH header, exactly as Encap would. The
// whole of full is a valid encapsulated frame on return.
func EncapShift(full []byte, spi uint32, si uint8) error {
	if spi > MaxSPI {
		return fmt.Errorf("nsh: encap: SPI %#x exceeds 24 bits", spi)
	}
	if len(full) < packet.NSHLen {
		return fmt.Errorf("nsh: encap: %w", packet.ErrTooShort)
	}
	inner := full[packet.NSHLen:]
	etOff, hdrOff, err := tagOffset(inner)
	if err != nil {
		return fmt.Errorf("nsh: encap: %w", err)
	}
	switch et := binary.BigEndian.Uint16(inner[etOff:]); et {
	case packet.EtherTypeNSH:
		return errors.New("nsh: encap: frame already encapsulated")
	case packet.EtherTypeIPv4:
	default:
		return fmt.Errorf("nsh: encap: inner ethertype %#x unsupported", et)
	}
	copy(full[:hdrOff], inner[:hdrOff])
	binary.BigEndian.PutUint16(full[etOff:], packet.EtherTypeNSH)
	putBaseHeader(full[hdrOff:], spi, si)
	return nil
}

// putBaseHeader writes the 8-byte NSH header Encap produces: ver=0,
// ttl=InitialTTL, len=2, mdtype=2, nextproto=IPv4, then the service path.
func putBaseHeader(b []byte, spi uint32, si uint8) {
	b0 := uint32(InitialTTL)<<22 | uint32(2)<<16 | uint32(2)<<12 | uint32(0x01)
	binary.BigEndian.PutUint32(b, b0)
	binary.BigEndian.PutUint32(b[4:], spi<<8|uint32(si))
}
