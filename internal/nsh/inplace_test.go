package nsh

import (
	"bytes"
	"testing"

	"lemur/internal/packet"
)

func vlanFrame(t *testing.T) []byte {
	t.Helper()
	return packet.Builder{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, VLANID: 42, Payload: []byte("vlan-payload"),
	}.Build()
}

// TestEncapInPlaceMatchesEncap: the in-place variant must produce the exact
// bytes of the allocating Encap, with and without spare capacity, for plain
// and VLAN-tagged frames.
func TestEncapInPlaceMatchesEncap(t *testing.T) {
	for _, mk := range []func(*testing.T) []byte{plainFrame, vlanFrame} {
		orig := mk(t)
		want, err := Encap(orig, 0x2345, 12)
		if err != nil {
			t.Fatal(err)
		}

		// No headroom: falls back to an alloc but bytes must match.
		tight := append([]byte(nil), orig...)
		got, err := EncapInPlace(tight, 0x2345, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("EncapInPlace (tight) diverges from Encap")
		}

		// Spare capacity: must reuse the buffer and still match.
		roomy := make([]byte, len(orig), len(orig)+packet.NSHLen)
		copy(roomy, orig)
		got2, err := EncapInPlace(roomy, 0x2345, 12)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, want) {
			t.Fatal("EncapInPlace (roomy) diverges from Encap")
		}
		if &got2[0] != &roomy[0] {
			t.Fatal("EncapInPlace with spare capacity must not reallocate")
		}
	}
}

// TestDecapInPlaceMatchesDecap: same bytes as Decap, base pointer preserved.
func TestDecapInPlaceMatchesDecap(t *testing.T) {
	orig := plainFrame(t)
	enc, err := Encap(orig, 77, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, spi, si, err := Decap(append([]byte(nil), enc...))
	if err != nil || spi != 77 || si != 5 {
		t.Fatalf("Decap = %d/%d, %v", spi, si, err)
	}
	mine := append([]byte(nil), enc...)
	got, spi2, si2, err := DecapInPlace(mine)
	if err != nil || spi2 != 77 || si2 != 5 {
		t.Fatalf("DecapInPlace = %d/%d, %v", spi2, si2, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("DecapInPlace diverges from Decap")
	}
	if &got[0] != &mine[0] || cap(got) != cap(mine) {
		t.Fatal("DecapInPlace must keep the base pointer and capacity for reuse")
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("decap did not restore the original frame")
	}
}

// TestShiftRoundTrip: DecapShift exposes the inner frame without copying the
// payload; EncapShift re-wraps it. The round trip must be byte-identical to
// Decap followed by Encap, and the inner slice must alias the frame.
func TestShiftRoundTrip(t *testing.T) {
	for _, mk := range []func(*testing.T) []byte{plainFrame, vlanFrame} {
		orig := mk(t)
		enc, err := Encap(orig, 300, 8)
		if err != nil {
			t.Fatal(err)
		}
		wantInner, _, _, err := Decap(append([]byte(nil), enc...))
		if err != nil {
			t.Fatal(err)
		}

		frame := append([]byte(nil), enc...)
		inner, spi, si, err := DecapShift(frame)
		if err != nil || spi != 300 || si != 8 {
			t.Fatalf("DecapShift = %d/%d, %v", spi, si, err)
		}
		if !bytes.Equal(inner, wantInner) {
			t.Fatal("DecapShift inner diverges from Decap")
		}
		if &inner[0] != &frame[packet.NSHLen] {
			t.Fatal("DecapShift inner must alias frame[NSHLen:]")
		}

		wantEnc, err := Encap(wantInner, 301, 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := EncapShift(frame, 301, 6); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, wantEnc) {
			t.Fatal("EncapShift diverges from Encap")
		}
	}
}

// TestShiftErrors: the in-place variants must reject the same malformed
// inputs the allocating ones do.
func TestShiftErrors(t *testing.T) {
	if _, _, _, err := DecapShift(plainFrame(t)); err == nil {
		t.Error("DecapShift on plain frame must fail")
	}
	if _, _, _, err := DecapInPlace(plainFrame(t)); err == nil {
		t.Error("DecapInPlace on plain frame must fail")
	}
	if _, err := EncapInPlace(plainFrame(t), MaxSPI+1, 1); err == nil {
		t.Error("EncapInPlace SPI overflow must fail")
	}
	enc, _ := Encap(plainFrame(t), 1, 1)
	if _, err := EncapInPlace(enc, 2, 2); err == nil {
		t.Error("double EncapInPlace must fail")
	}
	if err := EncapShift(append([]byte(nil), enc...), MaxSPI+1, 1); err == nil {
		t.Error("EncapShift SPI overflow must fail")
	}
}
