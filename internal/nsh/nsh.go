// Package nsh implements Network Service Header (RFC 8300) chain steering:
// encapsulating frames with an SPI/SI service-path tag, the SI-decrement
// walk along a service path, and the VLAN-vid fallback encoding used when a
// platform (the paper's OpenFlow switch) cannot carry NSH.
//
// A service path (SPI) is one linearized NF chain; the service index (SI)
// counts down as the packet traverses NFs, so "which NF comes next" is a
// pure function of (SPI, SI) — this is what lets the ToR switch act as the
// chain coordinator.
package nsh

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lemur/internal/packet"
)

// MaxSPI is the largest service path identifier (24-bit field).
const MaxSPI = 1<<24 - 1

// InitialTTL is the TTL set on freshly encapsulated packets.
const InitialTTL = 63

var (
	// ErrNotEncapped is returned when decap/walk operations are applied to a
	// frame with no NSH header.
	ErrNotEncapped = errors.New("nsh: frame is not NSH-encapsulated")
	// ErrTTLExpired is returned when the service path loops too long.
	ErrTTLExpired = errors.New("nsh: TTL expired")
	// ErrSIExhausted is returned when SI would underflow (chain overrun).
	ErrSIExhausted = errors.New("nsh: service index exhausted")
)

// tagOffset locates the byte offset of the ethertype field that would carry
// (or carries) the NSH ethertype: after the Ethernet header, skipping one
// optional outer 802.1Q tag (an NF like Tunnel may tag the transport frame
// mid-chain).
func tagOffset(frame []byte) (etherTypeOff, headerOff int, err error) {
	if len(frame) < packet.EthernetLen {
		return 0, 0, fmt.Errorf("nsh: %w", packet.ErrTooShort)
	}
	etOff := 12
	hdrOff := packet.EthernetLen
	if binary.BigEndian.Uint16(frame[etOff:]) == packet.EtherTypeVLAN {
		etOff = packet.EthernetLen + 2
		hdrOff = packet.EthernetLen + packet.VLANLen
		if len(frame) < hdrOff {
			return 0, 0, fmt.Errorf("nsh: %w", packet.ErrTooShort)
		}
	}
	return etOff, hdrOff, nil
}

// nshOffset returns the offset of the NSH header in an encapsulated frame.
func nshOffset(frame []byte) (int, error) {
	etOff, hdrOff, err := tagOffset(frame)
	if err != nil {
		return 0, err
	}
	if binary.BigEndian.Uint16(frame[etOff:]) != packet.EtherTypeNSH ||
		len(frame) < hdrOff+packet.NSHLen {
		return 0, ErrNotEncapped
	}
	return hdrOff, nil
}

// Encap inserts an NSH header (MD type 2, no metadata) between the L2
// headers (Ethernet plus an optional outer VLAN tag) and the IPv4 payload,
// returning a new frame.
func Encap(frame []byte, spi uint32, si uint8) ([]byte, error) {
	if spi > MaxSPI {
		return nil, fmt.Errorf("nsh: encap: SPI %#x exceeds 24 bits", spi)
	}
	etOff, hdrOff, err := tagOffset(frame)
	if err != nil {
		return nil, fmt.Errorf("nsh: encap: %w", err)
	}
	switch et := binary.BigEndian.Uint16(frame[etOff:]); et {
	case packet.EtherTypeNSH:
		return nil, errors.New("nsh: encap: frame already encapsulated")
	case packet.EtherTypeIPv4:
	default:
		return nil, fmt.Errorf("nsh: encap: inner ethertype %#x unsupported", et)
	}
	out := make([]byte, len(frame)+packet.NSHLen)
	copy(out, frame[:hdrOff])
	binary.BigEndian.PutUint16(out[etOff:], packet.EtherTypeNSH)
	// base header: ver=0 ttl=InitialTTL len=2 mdtype=2 nextproto=IPv4(0x1)
	b0 := uint32(InitialTTL)<<22 | uint32(2)<<16 | uint32(2)<<12 | uint32(0x01)
	binary.BigEndian.PutUint32(out[hdrOff:], b0)
	binary.BigEndian.PutUint32(out[hdrOff+4:], spi<<8|uint32(si))
	copy(out[hdrOff+packet.NSHLen:], frame[hdrOff:])
	return out, nil
}

// Decap strips the NSH header, restoring the plain L2+IPv4 frame. It
// returns the removed SPI/SI alongside.
func Decap(frame []byte) (out []byte, spi uint32, si uint8, err error) {
	etOff, hdrOff, err := tagOffset(frame)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("nsh: decap: %w", err)
	}
	if binary.BigEndian.Uint16(frame[etOff:]) != packet.EtherTypeNSH ||
		len(frame) < hdrOff+packet.NSHLen {
		return nil, 0, 0, ErrNotEncapped
	}
	sp := binary.BigEndian.Uint32(frame[hdrOff+4:])
	spi, si = sp>>8, uint8(sp)
	out = make([]byte, len(frame)-packet.NSHLen)
	copy(out, frame[:hdrOff])
	binary.BigEndian.PutUint16(out[etOff:], packet.EtherTypeIPv4)
	copy(out[hdrOff:], frame[hdrOff+packet.NSHLen:])
	return out, spi, si, nil
}

// Tag reads the SPI/SI of an encapsulated frame without modifying it.
func Tag(frame []byte) (spi uint32, si uint8, err error) {
	off, err := nshOffset(frame)
	if err != nil {
		return 0, 0, ErrNotEncapped
	}
	sp := binary.BigEndian.Uint32(frame[off+4:])
	return sp >> 8, uint8(sp), nil
}

// Advance decrements the service index in place (one NF, or one coalesced
// run of NFs, has been applied) and decrements TTL. steps is the number of
// service indices consumed; the paper's meta-compiler consolidates one SI
// update per sequential run (§4.2 optimization b), which maps to steps>1.
func Advance(frame []byte, steps uint8) error {
	off, err := nshOffset(frame)
	if err != nil {
		return ErrNotEncapped
	}
	b0 := binary.BigEndian.Uint32(frame[off:])
	ttl := uint8(b0>>22) & 0x3F
	if ttl == 0 {
		return ErrTTLExpired
	}
	ttl--
	b0 = b0&^(uint32(0x3F)<<22) | uint32(ttl)<<22
	binary.BigEndian.PutUint32(frame[off:], b0)

	sp := binary.BigEndian.Uint32(frame[off+4:])
	si := uint8(sp)
	if si < steps {
		return ErrSIExhausted
	}
	binary.BigEndian.PutUint32(frame[off+4:], sp&^0xFF|uint32(si-steps))
	return nil
}

// SetTag rewrites the SPI/SI of an already-encapsulated frame, used when a
// branch moves the packet onto a different service path.
func SetTag(frame []byte, spi uint32, si uint8) error {
	off, err := nshOffset(frame)
	if err != nil {
		return ErrNotEncapped
	}
	if spi > MaxSPI {
		return fmt.Errorf("nsh: SPI %#x exceeds 24 bits", spi)
	}
	binary.BigEndian.PutUint32(frame[off+4:], spi<<8|uint32(si))
	return nil
}
