package nsh

import (
	"errors"
	"fmt"
)

// The OpenFlow fallback: OpenFlow switches do not support NSH, so Lemur packs
// the service path into the 12-bit VLAN vid (§5.3). We split the vid into a
// path part and an index part; this limits how many chains and how many NFs
// per chain can be configured, exactly the limitation the paper notes.

// VLAN vid split: high bits select the path, low bits the service index.
const (
	VLANPathBits  = 7 // up to 128 service paths
	VLANIndexBits = 5 // up to 31 service indices per path
	MaxVLANPath   = 1<<VLANPathBits - 1
	MaxVLANIndex  = 1<<VLANIndexBits - 1
)

// ErrVLANOverflow is returned when a service path does not fit the vid split.
var ErrVLANOverflow = errors.New("nsh: service path does not fit in VLAN vid encoding")

// PackVLAN encodes (path, index) into a VLAN vid. Vid 0 is reserved
// (untagged), so path 0/index 0 maps to vid with index offset handled by the
// caller keeping index >= 1 for live paths.
func PackVLAN(path uint32, index uint8) (uint16, error) {
	if path > MaxVLANPath {
		return 0, fmt.Errorf("%w: path %d > %d", ErrVLANOverflow, path, MaxVLANPath)
	}
	if index > MaxVLANIndex {
		return 0, fmt.Errorf("%w: index %d > %d", ErrVLANOverflow, index, MaxVLANIndex)
	}
	vid := uint16(path)<<VLANIndexBits | uint16(index)
	if vid == 0 {
		return 0, fmt.Errorf("%w: (0,0) maps to reserved vid 0", ErrVLANOverflow)
	}
	return vid, nil
}

// UnpackVLAN decodes a vid produced by PackVLAN.
func UnpackVLAN(vid uint16) (path uint32, index uint8) {
	return uint32(vid >> VLANIndexBits), uint8(vid & MaxVLANIndex)
}
