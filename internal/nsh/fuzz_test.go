package nsh

import (
	"bytes"
	"math/rand"
	"testing"

	"lemur/internal/packet"
)

// randomFrame builds a well-formed frame with randomized header fields,
// VLAN-tagged half the time (Encap must handle both L2 layouts).
func randomFrame(rng *rand.Rand) []byte {
	b := packet.Builder{
		Src:     packet.IPv4Addr{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))},
		Dst:     packet.IPv4Addr{172, 16, byte(rng.Intn(256)), byte(rng.Intn(256))},
		SrcPort: uint16(rng.Intn(65536)),
		DstPort: uint16(rng.Intn(65536)),
		Payload: make([]byte, rng.Intn(64)),
	}
	if rng.Intn(2) == 0 {
		b.VLANID = uint16(1 + rng.Intn(4094))
	}
	return b.Build()
}

// TestEncapDecapRoundTripFuzz: for random frames and random (SPI, SI),
// Encap -> Tag -> Decap must return the tag and the original frame bytes
// exactly (mirrors the seeded-random fuzz style of internal/bpf).
func TestEncapDecapRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		frame := randomFrame(rng)
		spi := uint32(rng.Intn(MaxSPI + 1))
		si := uint8(rng.Intn(256))

		enc, err := Encap(frame, spi, si)
		if err != nil {
			t.Fatalf("trial %d: Encap(spi=%d si=%d): %v", trial, spi, si, err)
		}
		gotSPI, gotSI, err := Tag(enc)
		if err != nil {
			t.Fatalf("trial %d: Tag: %v", trial, err)
		}
		if gotSPI != spi || gotSI != si {
			t.Fatalf("trial %d: tag = (%d,%d), want (%d,%d)", trial, gotSPI, gotSI, spi, si)
		}

		// Retag to a fresh random point, then check Decap returns it.
		spi2 := uint32(rng.Intn(MaxSPI + 1))
		si2 := uint8(rng.Intn(256))
		if err := SetTag(enc, spi2, si2); err != nil {
			t.Fatalf("trial %d: SetTag: %v", trial, err)
		}
		dec, dSPI, dSI, err := Decap(enc)
		if err != nil {
			t.Fatalf("trial %d: Decap: %v", trial, err)
		}
		if dSPI != spi2 || dSI != si2 {
			t.Fatalf("trial %d: decap tag = (%d,%d), want (%d,%d)", trial, dSPI, dSI, spi2, si2)
		}
		if !bytes.Equal(dec, frame) {
			t.Fatalf("trial %d: round-trip mangled the frame:\n in:  %x\n out: %x", trial, frame, dec)
		}
	}
}

// TestAdvanceFuzz: Advance must decrement SI and never panic; SI underflow
// and TTL expiry must surface as the named errors.
func TestAdvanceFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 300; trial++ {
		frame := randomFrame(rng)
		si := uint8(rng.Intn(16))
		enc, err := Encap(frame, uint32(1+rng.Intn(MaxSPI)), si)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		steps := uint8(rng.Intn(16))
		err = Advance(enc, steps)
		if steps > si {
			if err == nil {
				t.Fatalf("trial %d: Advance(%d) from si=%d did not underflow", trial, steps, si)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: Advance(%d) from si=%d: %v", trial, steps, si, err)
		}
		_, gotSI, err := Tag(enc)
		if err != nil {
			t.Fatalf("trial %d: Tag after Advance: %v", trial, err)
		}
		if gotSI != si-steps {
			t.Fatalf("trial %d: si = %d after Advance(%d) from %d", trial, gotSI, steps, si)
		}
	}
}

// TestDecodeGarbageNeverPanics: arbitrary byte soup through every decode
// entry point must error cleanly, never panic — the switch dataplane calls
// these on every frame it sees.
func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(120))
		rng.Read(buf)
		// Bias some trials toward almost-valid frames: real frame, truncated.
		if rng.Intn(3) == 0 {
			full := randomFrame(rng)
			if enc, err := Encap(full, uint32(rng.Intn(MaxSPI+1)), uint8(rng.Intn(256))); err == nil {
				full = enc
			}
			buf = full[:rng.Intn(len(full)+1)]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic on %x: %v", trial, buf, r)
				}
			}()
			_, _, _ = Tag(buf)
			_, _, _, _ = Decap(buf)
			_ = Advance(buf, uint8(rng.Intn(4)))
			_ = SetTag(buf, uint32(rng.Intn(MaxSPI+1)), uint8(rng.Intn(256)))
			_, _ = Encap(buf, uint32(rng.Intn(MaxSPI+1)), uint8(rng.Intn(256)))
		}()
	}
}
