package nsh

import (
	"errors"
	"testing"
	"testing/quick"

	"lemur/internal/packet"
)

func plainFrame(t *testing.T) []byte {
	t.Helper()
	return packet.Builder{
		Src: packet.IPv4Addr{10, 0, 0, 1}, Dst: packet.IPv4Addr{10, 0, 0, 2},
		SrcPort: 1000, DstPort: 2000, Payload: []byte("payload"),
	}.Build()
}

func TestEncapDecapRoundTrip(t *testing.T) {
	orig := plainFrame(t)
	enc, err := Encap(orig, 0x1234, 9)
	if err != nil {
		t.Fatal(err)
	}
	spi, si, err := Tag(enc)
	if err != nil || spi != 0x1234 || si != 9 {
		t.Fatalf("Tag = %#x/%d, %v", spi, si, err)
	}
	var p packet.Packet
	if err := p.Decode(enc); err != nil {
		t.Fatalf("encapped frame undecodable: %v", err)
	}
	if !p.HasNSH || !p.HasIPv4 || !p.HasUDP {
		t.Fatalf("inner layers lost: %+v", p)
	}
	dec, spi2, si2, err := Decap(enc)
	if err != nil || spi2 != 0x1234 || si2 != 9 {
		t.Fatalf("Decap = %#x/%d, %v", spi2, si2, err)
	}
	if len(dec) != len(orig) {
		t.Fatalf("decap length %d, want %d", len(dec), len(orig))
	}
	for i := range dec {
		if dec[i] != orig[i] {
			t.Fatalf("decap diverges at byte %d", i)
		}
	}
}

func TestEncapErrors(t *testing.T) {
	orig := plainFrame(t)
	if _, err := Encap(orig, MaxSPI+1, 1); err == nil {
		t.Error("want SPI overflow error")
	}
	enc, _ := Encap(orig, 1, 1)
	if _, err := Encap(enc, 2, 2); err == nil {
		t.Error("want double-encap error")
	}
	if _, err := Encap(make([]byte, 3), 1, 1); err == nil {
		t.Error("want short-frame error")
	}
	if _, _, _, err := Decap(orig); !errors.Is(err, ErrNotEncapped) {
		t.Errorf("Decap on plain frame: %v, want ErrNotEncapped", err)
	}
}

func TestAdvance(t *testing.T) {
	enc, _ := Encap(plainFrame(t), 5, 10)
	if err := Advance(enc, 1); err != nil {
		t.Fatal(err)
	}
	if err := Advance(enc, 3); err != nil {
		t.Fatal(err)
	}
	_, si, _ := Tag(enc)
	if si != 6 {
		t.Errorf("si = %d, want 6", si)
	}
	if err := Advance(enc, 7); !errors.Is(err, ErrSIExhausted) {
		t.Errorf("overrun: %v, want ErrSIExhausted", err)
	}
	// TTL expiry after InitialTTL decrements.
	enc2, _ := Encap(plainFrame(t), 5, 255)
	var err error
	for i := 0; i < 255; i++ {
		if err = Advance(enc2, 0); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrTTLExpired) {
		t.Errorf("ttl: %v, want ErrTTLExpired after %d hops", err, InitialTTL)
	}
}

func TestSetTag(t *testing.T) {
	enc, _ := Encap(plainFrame(t), 1, 1)
	if err := SetTag(enc, 77, 33); err != nil {
		t.Fatal(err)
	}
	spi, si, _ := Tag(enc)
	if spi != 77 || si != 33 {
		t.Errorf("tag = %d/%d", spi, si)
	}
	if err := SetTag(enc, MaxSPI+1, 0); err == nil {
		t.Error("want overflow error")
	}
	if err := SetTag(plainFrame(t), 1, 1); !errors.Is(err, ErrNotEncapped) {
		t.Errorf("SetTag plain: %v", err)
	}
}

func TestEncapTagProperty(t *testing.T) {
	orig := plainFrame(t)
	f := func(spi uint32, si uint8) bool {
		spi &= MaxSPI
		enc, err := Encap(orig, spi, si)
		if err != nil {
			return false
		}
		gotSPI, gotSI, err := Tag(enc)
		return err == nil && gotSPI == spi && gotSI == si
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackVLANRoundTripProperty(t *testing.T) {
	f := func(path uint32, index uint8) bool {
		path %= MaxVLANPath + 1
		index %= MaxVLANIndex + 1
		vid, err := PackVLAN(path, index)
		if path == 0 && index == 0 {
			return err != nil // reserved
		}
		if err != nil {
			return false
		}
		p2, i2 := UnpackVLAN(vid)
		return p2 == path && i2 == index && vid <= 0x0FFF
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackVLANOverflow(t *testing.T) {
	if _, err := PackVLAN(MaxVLANPath+1, 0); !errors.Is(err, ErrVLANOverflow) {
		t.Errorf("path overflow: %v", err)
	}
	if _, err := PackVLAN(0, MaxVLANIndex+1); !errors.Is(err, ErrVLANOverflow) {
		t.Errorf("index overflow: %v", err)
	}
}
