// Package openflow simulates a fixed-function OpenFlow switch (the paper's
// Edgecore AS5712-54X). Unlike the PISA switch, the table pipeline order is
// fixed at manufacture: an NF sequence is deployable only if its NFs map
// onto the pipeline's tables in non-decreasing order (§5.3), and service
// paths are carried in the 12-bit VLAN vid because the switch cannot parse
// NSH.
package openflow

import (
	"errors"
	"fmt"

	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/nsh"
	"lemur/internal/obs"
	"lemur/internal/packet"
)

var (
	mFrames = obs.C("lemur_frames_total", obs.L("platform", "openflow"))
	mDrops  = obs.C("lemur_frame_drops_total", obs.L("platform", "openflow"))
)

// Deployment errors.
var (
	ErrTableOrder   = errors.New("openflow: NF sequence violates fixed table order")
	ErrNoOFImpl     = errors.New("openflow: NF has no OpenFlow implementation")
	ErrRuleCapacity = errors.New("openflow: rule capacity exceeded")
	ErrNoBinding    = errors.New("openflow: no binding for VLAN vid")
)

// Binding is the switch program for one service-path VLAN vid.
type Binding struct {
	NFs     []nf.NF
	Rules   int    // flow rules consumed
	PopVLAN bool   // strip the vid before forwarding (path ends here)
	NextVID uint16 // rewrite vid on exit (0 = keep); advances the path
	OutPort int
}

// Switch is the OpenFlow runtime.
type Switch struct {
	Spec     *hw.OpenFlowSpec
	bindings map[uint16]*Binding
	used     int // flow rules installed

	InFrames, DroppedFrames uint64
}

// NewSwitch builds an empty OpenFlow switch.
func NewSwitch(spec *hw.OpenFlowSpec) *Switch {
	return &Switch{Spec: spec, bindings: make(map[uint16]*Binding)}
}

// tableIndex maps an OF table kind to its fixed pipeline position.
func (s *Switch) tableIndex(kind string) int {
	for i, k := range s.Spec.TableOrder {
		if k == kind {
			return i
		}
	}
	return -1
}

// CheckOrder verifies that the NF classes map onto the fixed pipeline in
// non-decreasing table order — the feasibility check the Placer runs before
// offloading a sequence to the OpenFlow switch.
func (s *Switch) CheckOrder(classes []string) error {
	last := -1
	for _, class := range classes {
		meta, ok := nf.Registry[class]
		if !ok || meta.OFTable == "" {
			return fmt.Errorf("%w: %s", ErrNoOFImpl, class)
		}
		idx := s.tableIndex(meta.OFTable)
		if idx < 0 {
			return fmt.Errorf("%w: %s (table %q not in pipeline %v)",
				ErrNoOFImpl, class, meta.OFTable, s.Spec.TableOrder)
		}
		if idx < last {
			return fmt.Errorf("%w: %s's table %q comes before the previous NF's table",
				ErrTableOrder, class, meta.OFTable)
		}
		last = idx
	}
	return nil
}

// Deploy installs an NF sequence for the given service-path vid. rules is
// the number of flow entries the sequence needs (e.g. the ACL's rule count).
func (s *Switch) Deploy(vid uint16, nfs []nf.NF, rules int, b Binding) error {
	classes := make([]string, len(nfs))
	for i, fn := range nfs {
		classes[i] = fn.Class()
	}
	if err := s.CheckOrder(classes); err != nil {
		return err
	}
	if s.used+rules > s.Spec.MaxRules {
		return fmt.Errorf("%w: %d + %d > %d", ErrRuleCapacity, s.used, rules, s.Spec.MaxRules)
	}
	b.NFs = nfs
	b.Rules = rules
	s.bindings[vid] = &b
	s.used += rules
	return nil
}

// RulesUsed returns installed rule count.
func (s *Switch) RulesUsed() int { return s.used }

// ProcessFrame runs one VLAN-tagged frame through the pipeline. A nil frame
// with nil error is a drop.
func (s *Switch) ProcessFrame(frame []byte, env *nf.Env) (out []byte, rerr error) {
	s.InFrames++
	mFrames.Inc()
	defer func() {
		if out == nil {
			mDrops.Inc()
		}
	}()
	var p packet.Packet
	if err := p.Decode(frame); err != nil {
		return nil, fmt.Errorf("openflow: %w", err)
	}
	if !p.HasVLAN {
		s.DroppedFrames++
		return nil, fmt.Errorf("%w: untagged frame", ErrNoBinding)
	}
	b, ok := s.bindings[p.VLAN.VID]
	if !ok {
		s.DroppedFrames++
		return nil, fmt.Errorf("%w: vid=%d", ErrNoBinding, p.VLAN.VID)
	}
	for _, fn := range b.NFs {
		fn.Process(&p, env)
		if p.Drop {
			s.DroppedFrames++
			return nil, nil
		}
	}
	if b.NextVID != 0 {
		p.VLAN.VID = b.NextVID
	}
	p.OutPort = b.OutPort
	p.SyncHeaders()
	frame = p.Data
	if b.PopVLAN {
		// Reuse the Detunnel NF semantics via direct re-framing.
		dt, err := nf.New("Detunnel", "of-pop", nil)
		if err != nil {
			return nil, err
		}
		dt.Process(&p, env)
		p.SyncHeaders()
		frame = p.Data
	}
	return frame, nil
}

// PathVID packs a (path, index) pair into a vid per the §5.3 encoding.
func PathVID(path uint32, index uint8) (uint16, error) {
	return nsh.PackVLAN(path, index)
}
