package openflow

import (
	"errors"
	"testing"

	"lemur/internal/hw"
	"lemur/internal/nf"
	"lemur/internal/packet"
)

func ofSwitch() *Switch {
	tb := hw.NewPaperTestbed(hw.WithOpenFlowSwitch())
	return NewSwitch(tb.OFSwitch)
}

func taggedFrame(vid uint16, dst packet.IPv4Addr) []byte {
	return packet.Builder{
		VLANID: vid,
		Src:    packet.IPv4Addr{10, 0, 0, 1}, Dst: dst,
		SrcPort: 1000, DstPort: 2000, Payload: []byte("x"),
	}.Build()
}

func TestCheckOrder(t *testing.T) {
	s := ofSwitch() // pipeline: vlan, acl, monitor, forward
	if err := s.CheckOrder([]string{"Detunnel", "ACL", "Monitor", "IPv4Fwd"}); err != nil {
		t.Errorf("in-order sequence rejected: %v", err)
	}
	if err := s.CheckOrder([]string{"ACL", "IPv4Fwd"}); err != nil {
		t.Errorf("subsequence rejected: %v", err)
	}
	// Same-table repetition is fine (non-decreasing).
	if err := s.CheckOrder([]string{"ACL", "ACL"}); err != nil {
		t.Errorf("repeat rejected: %v", err)
	}
	if err := s.CheckOrder([]string{"Monitor", "ACL"}); !errors.Is(err, ErrTableOrder) {
		t.Errorf("out-of-order: %v", err)
	}
	if err := s.CheckOrder([]string{"IPv4Fwd", "Tunnel"}); !errors.Is(err, ErrTableOrder) {
		t.Errorf("forward-then-vlan: %v", err)
	}
	if err := s.CheckOrder([]string{"Encrypt"}); !errors.Is(err, ErrNoOFImpl) {
		t.Errorf("no OF impl: %v", err)
	}
	if err := s.CheckOrder([]string{"Quantum"}); !errors.Is(err, ErrNoOFImpl) {
		t.Errorf("unknown class: %v", err)
	}
}

func TestDeployAndProcess(t *testing.T) {
	s := ofSwitch()
	acl, err := nf.New("ACL", "acl0", nf.Params{"allow_dst": "172.16.0.0/12", "rules": 0})
	if err != nil {
		t.Fatal(err)
	}
	mon, _ := nf.New("Monitor", "mon0", nil)
	vid, err := PathVID(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Deploy(vid, []nf.NF{acl, mon}, 1024, Binding{OutPort: 7}); err != nil {
		t.Fatal(err)
	}
	out, err := s.ProcessFrame(taggedFrame(vid, packet.IPv4Addr{172, 16, 9, 9}), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	if err := p.Decode(out); err != nil {
		t.Fatal(err)
	}
	if !p.HasVLAN || p.VLAN.VID != vid {
		t.Errorf("vid = %d, want %d", p.VLAN.VID, vid)
	}
	if mon.(*nf.Monitor).NumFlows() != 1 {
		t.Error("monitor did not observe the flow")
	}
	// ACL drop path.
	dropped, err := s.ProcessFrame(taggedFrame(vid, packet.IPv4Addr{9, 9, 9, 9}), &nf.Env{})
	if err != nil || dropped != nil {
		t.Errorf("deny traffic: out=%v err=%v", dropped, err)
	}
	if s.DroppedFrames != 1 {
		t.Errorf("DroppedFrames = %d", s.DroppedFrames)
	}
}

func TestDeployRejectsBadOrder(t *testing.T) {
	s := ofSwitch()
	mon, _ := nf.New("Monitor", "m", nil)
	acl, _ := nf.New("ACL", "a", nil)
	if err := s.Deploy(5, []nf.NF{mon, acl}, 10, Binding{}); !errors.Is(err, ErrTableOrder) {
		t.Errorf("err = %v", err)
	}
}

func TestRuleCapacity(t *testing.T) {
	s := ofSwitch()
	acl, _ := nf.New("ACL", "a", nil)
	if err := s.Deploy(1, []nf.NF{acl}, 4000, Binding{}); err != nil {
		t.Fatal(err)
	}
	if got := s.RulesUsed(); got != 4000 {
		t.Errorf("RulesUsed = %d", got)
	}
	acl2, _ := nf.New("ACL", "b", nil)
	if err := s.Deploy(2, []nf.NF{acl2}, 200, Binding{}); !errors.Is(err, ErrRuleCapacity) {
		t.Errorf("err = %v", err)
	}
}

func TestVIDRewriteAndPop(t *testing.T) {
	s := ofSwitch()
	dt, _ := nf.New("Detunnel", "d", nil)
	_ = dt
	fwd, _ := nf.New("IPv4Fwd", "f", nil)
	// Rewrite vid on exit.
	if err := s.Deploy(10, []nf.NF{fwd}, 1, Binding{NextVID: 11}); err != nil {
		t.Fatal(err)
	}
	out, err := s.ProcessFrame(taggedFrame(10, packet.IPv4Addr{1, 1, 1, 1}), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	var p packet.Packet
	p.Decode(out)
	if p.VLAN.VID != 11 {
		t.Errorf("vid = %d, want 11", p.VLAN.VID)
	}
	// Pop on exit.
	fwd2, _ := nf.New("IPv4Fwd", "f2", nil)
	if err := s.Deploy(12, []nf.NF{fwd2}, 1, Binding{PopVLAN: true, OutPort: 3}); err != nil {
		t.Fatal(err)
	}
	out2, err := s.ProcessFrame(taggedFrame(12, packet.IPv4Addr{1, 1, 1, 1}), &nf.Env{})
	if err != nil {
		t.Fatal(err)
	}
	var q packet.Packet
	q.Decode(out2)
	if q.HasVLAN {
		t.Error("vid not popped")
	}
}

func TestProcessMisses(t *testing.T) {
	s := ofSwitch()
	if _, err := s.ProcessFrame(taggedFrame(99, packet.IPv4Addr{1, 1, 1, 1}), &nf.Env{}); !errors.Is(err, ErrNoBinding) {
		t.Errorf("unknown vid: %v", err)
	}
	untagged := packet.Builder{Src: packet.IPv4Addr{1, 1, 1, 1}, Dst: packet.IPv4Addr{2, 2, 2, 2}}.Build()
	if _, err := s.ProcessFrame(untagged, &nf.Env{}); !errors.Is(err, ErrNoBinding) {
		t.Errorf("untagged: %v", err)
	}
}
