package bpf

// ExprView is an exported structural view of a compiled filter, consumed by
// cross-compilers (the SmartNIC eBPF code generator, the P4 rule emitter).
type ExprView struct {
	Kind  string // "cmp", "and", "or", "not", "const"
	Field Field
	Op    Op
	Val   uint32
	Mask  uint32 // OpIn only
	Bool  bool   // "const" only
	Kids  []ExprView
}

// View returns the filter's expression tree.
func (f *Filter) View() ExprView { return viewNode(&f.root) }

func viewNode(n *node) ExprView {
	v := ExprView{Field: n.field, Op: n.op, Val: n.val, Mask: n.mask}
	switch n.kind {
	case kindCmp:
		v.Kind = "cmp"
	case kindAnd:
		v.Kind = "and"
	case kindOr:
		v.Kind = "or"
	case kindNot:
		v.Kind = "not"
	case kindConst:
		v.Kind = "const"
		v.Bool = n.val != 0
	}
	for i := range n.kids {
		v.Kids = append(v.Kids, viewNode(&n.kids[i]))
	}
	return v
}
