package bpf

import (
	"math/rand"
	"testing"

	"lemur/internal/packet"
)

// TestCompileNeverPanics: arbitrary expression soup must error cleanly.
func TestCompileNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	alphabet := []byte("ip.src dst proto tos port tcp udp vlan.vid in && || ! () == != < > = 0123456789./ true false")
	for trial := 0; trial < 500; trial++ {
		buf := make([]byte, rng.Intn(80))
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", buf, r)
				}
			}()
			if f, err := Compile(string(buf)); err == nil {
				// Compiled filters must also evaluate without panicking.
				p := packet.Builder{
					Src: packet.IPv4Addr{10, 1, 2, 3}, Dst: packet.IPv4Addr{4, 5, 6, 7},
					SrcPort: 99, DstPort: 443,
				}.New()
				_ = f.Match(p)
				_ = f.View()
				_ = f.Instructions()
			}
		}()
	}
}
