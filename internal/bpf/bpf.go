// Package bpf implements a small BPF-style match expression language used for
// the Match NF, branch predicates in chain specifications, and traffic-class
// definitions.
//
// Expressions compare packet fields against constants and combine with
// boolean operators, e.g.:
//
//	ip.dst in 10.0.0.0/8 && (tcp.dport == 443 || tcp.dport == 80)
//	vlan.vid == 7 && !(ip.proto == 17)
//
// A compiled Filter evaluates against *packet.Packet without allocating. The
// instruction count of the compiled form feeds the SmartNIC verifier's
// program-size accounting.
package bpf

import (
	"fmt"
	"strconv"
	"strings"

	"lemur/internal/packet"
)

// Field identifies a packet field usable in expressions.
type Field int

// Supported match fields.
const (
	FieldIPSrc Field = iota
	FieldIPDst
	FieldIPProto
	FieldIPTOS
	FieldSrcPort // TCP or UDP source port
	FieldDstPort // TCP or UDP destination port
	FieldVLANVID
)

var fieldNames = map[string]Field{
	"ip.src":    FieldIPSrc,
	"ip.dst":    FieldIPDst,
	"ip.proto":  FieldIPProto,
	"ip.tos":    FieldIPTOS,
	"port.src":  FieldSrcPort,
	"port.dst":  FieldDstPort,
	"tcp.sport": FieldSrcPort,
	"tcp.dport": FieldDstPort,
	"udp.sport": FieldSrcPort,
	"udp.dport": FieldDstPort,
	"vlan.vid":  FieldVLANVID,
}

// Op is a comparison operator.
type Op int

// Comparison operators.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpIn // CIDR membership, IP fields only
)

// node is one compiled expression node.
type node struct {
	kind  nodeKind
	field Field
	op    Op
	val   uint32
	mask  uint32 // for OpIn: network mask
	kids  []node
}

type nodeKind int

const (
	kindCmp nodeKind = iota
	kindAnd
	kindOr
	kindNot
	kindConst // val != 0 means true
)

// Filter is a compiled match expression.
type Filter struct {
	root node
	src  string
	n    int // instruction count
}

// String returns the source expression.
func (f *Filter) String() string { return f.src }

// Instructions returns the number of primitive comparisons/boolean ops in the
// compiled filter, used for eBPF program-size accounting.
func (f *Filter) Instructions() int { return f.n }

// Compile parses and compiles a match expression.
func Compile(expr string) (*Filter, error) {
	p := &parser{toks: lex(expr)}
	root, err := p.parseOr()
	if err != nil {
		return nil, fmt.Errorf("bpf: %q: %w", expr, err)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("bpf: %q: trailing input at %q", expr, p.peek().text)
	}
	f := &Filter{root: root, src: expr}
	f.n = countNodes(&root)
	return f, nil
}

// MustCompile is Compile, panicking on error; for static expressions.
func MustCompile(expr string) *Filter {
	f, err := Compile(expr)
	if err != nil {
		panic(err)
	}
	return f
}

func countNodes(n *node) int {
	c := 1
	for i := range n.kids {
		c += countNodes(&n.kids[i])
	}
	return c
}

// Match evaluates the filter against a decoded packet.
func (f *Filter) Match(p *packet.Packet) bool {
	return evalNode(&f.root, p)
}

func evalNode(n *node, p *packet.Packet) bool {
	switch n.kind {
	case kindConst:
		return n.val != 0
	case kindNot:
		return !evalNode(&n.kids[0], p)
	case kindAnd:
		for i := range n.kids {
			if !evalNode(&n.kids[i], p) {
				return false
			}
		}
		return true
	case kindOr:
		for i := range n.kids {
			if evalNode(&n.kids[i], p) {
				return true
			}
		}
		return false
	case kindCmp:
		v, ok := fieldValue(n.field, p)
		if !ok {
			return false
		}
		switch n.op {
		case OpEq:
			return v == n.val
		case OpNe:
			return v != n.val
		case OpLt:
			return v < n.val
		case OpLe:
			return v <= n.val
		case OpGt:
			return v > n.val
		case OpGe:
			return v >= n.val
		case OpIn:
			return v&n.mask == n.val&n.mask
		}
	}
	return false
}

func fieldValue(f Field, p *packet.Packet) (uint32, bool) {
	switch f {
	case FieldIPSrc:
		if !p.HasIPv4 {
			return 0, false
		}
		return p.IP.Src.Uint32(), true
	case FieldIPDst:
		if !p.HasIPv4 {
			return 0, false
		}
		return p.IP.Dst.Uint32(), true
	case FieldIPProto:
		if !p.HasIPv4 {
			return 0, false
		}
		return uint32(p.IP.Protocol), true
	case FieldIPTOS:
		if !p.HasIPv4 {
			return 0, false
		}
		return uint32(p.IP.TOS), true
	case FieldSrcPort:
		switch {
		case p.HasTCP:
			return uint32(p.TCP.SrcPort), true
		case p.HasUDP:
			return uint32(p.UDP.SrcPort), true
		}
		return 0, false
	case FieldDstPort:
		switch {
		case p.HasTCP:
			return uint32(p.TCP.DstPort), true
		case p.HasUDP:
			return uint32(p.UDP.DstPort), true
		}
		return 0, false
	case FieldVLANVID:
		if !p.HasVLAN {
			return 0, false
		}
		return uint32(p.VLAN.VID), true
	}
	return 0, false
}

// ---- lexer ----

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokIP
	tokCIDR
	tokOp     // == != < <= > >=
	tokAnd    // &&
	tokOr     // ||
	tokNot    // !
	tokLParen // (
	tokRParen // )
	tokErr
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == '&':
			if i+1 < len(s) && s[i+1] == '&' {
				toks = append(toks, token{tokAnd, "&&"})
				i += 2
			} else {
				toks = append(toks, token{tokErr, s[i:]})
				i = len(s)
			}
		case c == '|':
			if i+1 < len(s) && s[i+1] == '|' {
				toks = append(toks, token{tokOr, "||"})
				i += 2
			} else {
				toks = append(toks, token{tokErr, s[i:]})
				i = len(s)
			}
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, "!="})
				i += 2
			} else {
				toks = append(toks, token{tokNot, "!"})
				i++
			}
		case c == '=' || c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(s) && s[i] == '=' {
				op += "="
				i++
			}
			if op == "=" {
				toks = append(toks, token{tokErr, "="})
			} else {
				toks = append(toks, token{tokOp, op})
			}
		case c >= '0' && c <= '9':
			j := i
			dots, slash := 0, false
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == '/') {
				if s[j] == '.' {
					dots++
				}
				if s[j] == '/' {
					slash = true
				}
				j++
			}
			text := s[i:j]
			switch {
			case slash:
				toks = append(toks, token{tokCIDR, text})
			case dots == 3:
				toks = append(toks, token{tokIP, text})
			case dots == 0:
				toks = append(toks, token{tokNumber, text})
			default:
				toks = append(toks, token{tokErr, text})
			}
			i = j
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
			j := i
			for j < len(s) && (s[j] >= 'a' && s[j] <= 'z' || s[j] >= 'A' && s[j] <= 'Z' ||
				s[j] >= '0' && s[j] <= '9' || s[j] == '.' || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			toks = append(toks, token{tokErr, string(c)})
			i++
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return node{}, err
	}
	kids := []node{left}
	for p.peek().kind == tokOr {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return node{}, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return node{kind: kindOr, kids: kids}, nil
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return node{}, err
	}
	kids := []node{left}
	for p.peek().kind == tokAnd {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return node{}, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return node{kind: kindAnd, kids: kids}, nil
}

func (p *parser) parseUnary() (node, error) {
	switch t := p.peek(); t.kind {
	case tokNot:
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return node{}, err
		}
		return node{kind: kindNot, kids: []node{inner}}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return node{}, err
		}
		if p.peek().kind != tokRParen {
			return node{}, fmt.Errorf("missing ')' at %q", p.peek().text)
		}
		p.next()
		return inner, nil
	case tokIdent:
		if t.text == "true" || t.text == "false" {
			p.next()
			v := uint32(0)
			if t.text == "true" {
				v = 1
			}
			return node{kind: kindConst, val: v}, nil
		}
		return p.parseCmp()
	default:
		return node{}, fmt.Errorf("unexpected token %q", t.text)
	}
}

func (p *parser) parseCmp() (node, error) {
	ft := p.next()
	field, ok := fieldNames[ft.text]
	if !ok {
		return node{}, fmt.Errorf("unknown field %q", ft.text)
	}
	opt := p.next()
	var op Op
	switch {
	case opt.kind == tokOp:
		switch opt.text {
		case "==":
			op = OpEq
		case "!=":
			op = OpNe
		case "<":
			op = OpLt
		case "<=":
			op = OpLe
		case ">":
			op = OpGt
		case ">=":
			op = OpGe
		}
	case opt.kind == tokIdent && opt.text == "in":
		op = OpIn
	default:
		return node{}, fmt.Errorf("expected operator after field, got %q", opt.text)
	}

	vt := p.next()
	n := node{kind: kindCmp, field: field, op: op}
	switch {
	case op == OpIn:
		if vt.kind != tokCIDR {
			return node{}, fmt.Errorf("'in' requires a CIDR, got %q", vt.text)
		}
		if field != FieldIPSrc && field != FieldIPDst {
			return node{}, fmt.Errorf("'in' only applies to IP fields")
		}
		addr, bits, err := ParseCIDR(vt.text)
		if err != nil {
			return node{}, err
		}
		n.val = addr
		n.mask = maskBits(bits)
	case vt.kind == tokIP:
		addr, err := parseIPv4(vt.text)
		if err != nil {
			return node{}, err
		}
		n.val = addr
	case vt.kind == tokNumber:
		v, err := strconv.ParseUint(vt.text, 10, 32)
		if err != nil {
			return node{}, fmt.Errorf("bad number %q", vt.text)
		}
		n.val = uint32(v)
	default:
		return node{}, fmt.Errorf("expected value, got %q", vt.text)
	}
	return n, nil
}

// ParseCIDR parses "a.b.c.d/n" into a host-order address and prefix length.
func ParseCIDR(s string) (addr uint32, bits int, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("bad CIDR %q", s)
	}
	addr, err = parseIPv4(s[:slash])
	if err != nil {
		return 0, 0, err
	}
	bits, err = strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return 0, 0, fmt.Errorf("bad prefix length in %q", s)
	}
	return addr, bits, nil
}

func parseIPv4(s string) (uint32, error) {
	var a packet.IPv4Addr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bad IPv4 %q", s)
	}
	for i, part := range parts {
		v, err := strconv.ParseUint(part, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("bad IPv4 %q", s)
		}
		a[i] = byte(v)
	}
	return a.Uint32(), nil
}

func maskBits(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// MaskBits exposes prefix-length→mask conversion for other packages (ACL,
// OpenFlow rules).
func MaskBits(bits int) uint32 { return maskBits(bits) }
