package bpf

import (
	"testing"
	"testing/quick"

	"lemur/internal/packet"
)

func pkt(src, dst packet.IPv4Addr, proto uint8, sport, dport uint16) *packet.Packet {
	return packet.Builder{Src: src, Dst: dst, Proto: proto, SrcPort: sport, DstPort: dport}.New()
}

func TestCompileAndMatch(t *testing.T) {
	p := pkt(packet.IPv4Addr{10, 1, 2, 3}, packet.IPv4Addr{192, 168, 0, 1},
		packet.IPProtoTCP, 4000, 443)
	cases := []struct {
		expr string
		want bool
	}{
		{"ip.src in 10.0.0.0/8", true},
		{"ip.src in 10.1.0.0/16", true},
		{"ip.src in 11.0.0.0/8", false},
		{"ip.dst == 192.168.0.1", true},
		{"ip.dst != 192.168.0.1", false},
		{"tcp.dport == 443", true},
		{"tcp.dport == 80 || tcp.dport == 443", true},
		{"tcp.dport == 80 && tcp.dport == 443", false},
		{"ip.proto == 6", true},
		{"ip.proto == 17", false},
		{"!(ip.proto == 17)", true},
		{"port.src >= 1024", true},
		{"port.src < 1024", false},
		{"port.src <= 4000 && port.src >= 4000", true},
		{"true", true},
		{"false", false},
		{"ip.src in 10.0.0.0/8 && (tcp.dport == 443 || tcp.dport == 80)", true},
		{"vlan.vid == 5", false}, // no VLAN layer: comparisons on absent layers are false
	}
	for _, tc := range cases {
		f, err := Compile(tc.expr)
		if err != nil {
			t.Errorf("Compile(%q): %v", tc.expr, err)
			continue
		}
		if got := f.Match(p); got != tc.want {
			t.Errorf("%q = %v, want %v", tc.expr, got, tc.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		"",
		"ip.src",
		"ip.src ==",
		"ip.src = 10.0.0.1",
		"nosuch.field == 1",
		"ip.src in 10.0.0.1",         // 'in' needs CIDR
		"tcp.dport in 10.0.0.0/8",    // 'in' needs IP field
		"ip.src in 10.0.0.0/33",      // bad prefix
		"(ip.proto == 6",             // unbalanced paren
		"ip.proto == 6 extra",        // trailing
		"ip.proto & 6",               // single &
		"ip.src == 10.0.0",           // malformed IP
		"ip.dst == 10.0.0.1.2",       // too many octets
		"ip.proto == 99999999999999", // overflow
	}
	for _, expr := range bad {
		if _, err := Compile(expr); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", expr)
		}
	}
}

func TestVLANMatch(t *testing.T) {
	p := packet.Builder{
		VLANID: 100,
		Src:    packet.IPv4Addr{1, 1, 1, 1}, Dst: packet.IPv4Addr{2, 2, 2, 2},
	}.New()
	if !MustCompile("vlan.vid == 100").Match(p) {
		t.Error("vlan.vid == 100 should match")
	}
	if MustCompile("vlan.vid == 101").Match(p) {
		t.Error("vlan.vid == 101 should not match")
	}
}

func TestUDPPortAlias(t *testing.T) {
	p := pkt(packet.IPv4Addr{1, 1, 1, 1}, packet.IPv4Addr{2, 2, 2, 2}, packet.IPProtoUDP, 5353, 53)
	if !MustCompile("udp.dport == 53").Match(p) {
		t.Error("udp.dport == 53 should match")
	}
	if !MustCompile("port.dst == 53").Match(p) {
		t.Error("port.dst == 53 should match")
	}
}

func TestInstructions(t *testing.T) {
	f := MustCompile("ip.src in 10.0.0.0/8 && (tcp.dport == 443 || tcp.dport == 80)")
	// and(cmp, or(cmp, cmp)) = 5 nodes
	if f.Instructions() != 5 {
		t.Errorf("Instructions = %d, want 5", f.Instructions())
	}
	if MustCompile("true").Instructions() != 1 {
		t.Error("const should be 1 instruction")
	}
}

func TestCIDRMatchProperty(t *testing.T) {
	// For any address and prefix, an address always matches a CIDR built
	// from its own prefix.
	f := func(addr uint32, bits uint8) bool {
		b := int(bits % 33)
		mask := MaskBits(b)
		network := addr & mask
		na := packet.AddrFromUint32(network)
		expr := "ip.src in " + na.String() + "/" + itoa(b)
		flt, err := Compile(expr)
		if err != nil {
			return false
		}
		p := pkt(packet.AddrFromUint32(addr), packet.IPv4Addr{1, 1, 1, 1}, packet.IPProtoUDP, 1, 1)
		return flt.Match(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [3]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestDeMorganProperty(t *testing.T) {
	// !(a && b) must equal (!a || !b) over random packets.
	fa := MustCompile("!(ip.proto == 6 && port.dst == 80)")
	fb := MustCompile("!(ip.proto == 6) || !(port.dst == 80)")
	f := func(proto bool, dport uint16) bool {
		pr := packet.IPProtoUDP
		if proto {
			pr = packet.IPProtoTCP
		}
		p := pkt(packet.IPv4Addr{1, 2, 3, 4}, packet.IPv4Addr{4, 3, 2, 1}, pr, 1000, dport)
		return fa.Match(p) == fb.Match(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMatch(b *testing.B) {
	f := MustCompile("ip.src in 10.0.0.0/8 && (tcp.dport == 443 || tcp.dport == 80)")
	p := pkt(packet.IPv4Addr{10, 1, 2, 3}, packet.IPv4Addr{192, 168, 0, 1}, packet.IPProtoTCP, 4000, 443)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !f.Match(p) {
			b.Fatal("no match")
		}
	}
}
