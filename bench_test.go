// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each benchmark regenerates its artifact and
// reports the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. EXPERIMENTS.md records the paper-reported
// vs measured values; cmd/lemur-bench prints the same data as tables.
package lemur

import (
	"fmt"
	"testing"
	"time"

	"lemur/internal/experiments"
	"lemur/internal/hw"
	"lemur/internal/metacompiler"
	"lemur/internal/nfgraph"
	"lemur/internal/nfspec"
	"lemur/internal/pisa"
	"lemur/internal/placer"
	"lemur/internal/profile"
	"lemur/internal/runtime"
)

// benchDeltas is the δ grid used by the figure benchmarks (the full paper
// grid is 0.5..4.0; the upper half is infeasible for every scheme on our
// 15-worker-core rack, so benchmarks sweep the informative range).
var benchDeltas = []float64{0.5, 1.0, 1.5, 2.0}

// benchSchemes mirrors Figure 2's scheme set.
var benchSchemes = []placer.Scheme{
	placer.SchemeLemur, placer.SchemeOptimal, placer.SchemeHWPreferred,
	placer.SchemeSWPreferred, placer.SchemeMinBounce, placer.SchemeGreedy,
}

func benchFigure2(b *testing.B, combo []int) {
	b.Helper()
	r := experiments.NewRunner(hw.NewPaperTestbed())
	var rows []experiments.DeltaRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Figure2Panel(combo, benchDeltas, benchSchemes)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the δ=0.5 aggregate per scheme plus Lemur's feasibility reach.
	lemurFeasible := 0
	for _, row := range rows {
		for _, sr := range row.Schemes {
			if sr.Scheme == placer.SchemeLemur && sr.Feasible {
				lemurFeasible++
			}
		}
	}
	b.ReportMetric(float64(lemurFeasible), "lemur-feasible-deltas")
	for _, sr := range rows[0].Schemes {
		if sr.Feasible {
			b.ReportMetric(sr.MeasuredAggregate/1e9, fmt.Sprintf("%s-gbps@0.5", sr.Scheme))
		}
	}
}

func BenchmarkFigure2a(b *testing.B) { benchFigure2(b, []int{1, 2, 3, 4}) }
func BenchmarkFigure2b(b *testing.B) { benchFigure2(b, []int{1, 2, 3}) }
func BenchmarkFigure2c(b *testing.B) { benchFigure2(b, []int{1, 2, 4}) }
func BenchmarkFigure2d(b *testing.B) { benchFigure2(b, []int{1, 3, 4}) }
func BenchmarkFigure2e(b *testing.B) { benchFigure2(b, []int{2, 3, 4}) }

func BenchmarkFigure2fAblations(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	var rows []experiments.DeltaRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = r.Figure2f(benchDeltas)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, sr := range rows[0].Schemes {
		if sr.Feasible {
			b.ReportMetric(sr.MeasuredAggregate/1e9, fmt.Sprintf("%s-gbps@0.5", sr.Scheme))
		}
	}
	// Feasibility reach per variant across the sweep.
	reach := map[placer.Scheme]int{}
	for _, row := range rows {
		for _, sr := range row.Schemes {
			if sr.Feasible {
				reach[sr.Scheme]++
			}
		}
	}
	b.ReportMetric(float64(reach[placer.SchemeNoProfiling]), "noprofiling-feasible-deltas")
	b.ReportMetric(float64(reach[placer.SchemeNoCoreAlloc]), "nocorealloc-feasible-deltas")
}

func BenchmarkFigure3aMultiServer(b *testing.B) {
	var rows []experiments.Figure3aResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3a([]float64{0.5, 1.5}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].SingleAggregate/1e9, "1srv-gbps@0.5")
	b.ReportMetric(rows[0].TwoServerAggregate/1e9, "2srv-gbps@0.5")
	feas := 0.0
	if rows[1].SingleFeasible {
		feas = 1
	}
	b.ReportMetric(feas, "1srv-feasible@1.5")
}

func BenchmarkFigure3bSmartNIC(b *testing.B) {
	var rows []experiments.Figure3bResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3b([]float64{0.5, 1.5}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].ServerOnlyAgg/1e9, "server-gbps@0.5")
	b.ReportMetric(rows[0].WithNICAgg/1e9, "nic-gbps@0.5")
	feas := 0.0
	if rows[1].ServerOnlyFeasible {
		feas = 1
	}
	b.ReportMetric(feas, "server-feasible@1.5")
}

func BenchmarkFigure3cOpenFlow(b *testing.B) {
	var r experiments.Figure3cResult
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3c()
	}
	b.ReportMetric(r.OFRateBps/1e6, "of-mbps")
	b.ReportMetric(r.ServerRateBps/1e6, "server-mbps")
	b.ReportMetric(r.Speedup, "speedup-x")
}

func BenchmarkTable4Profiles(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table4(500) // the paper's 500 runs
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		if row.NUMA == 0 { // same-NUMA rows only, to bound metric count
			b.ReportMetric(row.Stats.Mean, row.NF+"-mean-cycles")
		}
	}
}

func BenchmarkExtremeStageConstraint(b *testing.B) {
	var rows []experiments.ExtremeConfigResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.ExtremeConfig([]placer.Scheme{
			placer.SchemeLemur, placer.SchemeHWPreferred, placer.SchemeMinBounce})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Stages), "lemur-stages")
	b.ReportMetric(float64(rows[0].NATsOnSwitch), "lemur-nats-on-switch")
	infeasibleOthers := 0
	for _, row := range rows[1:] {
		if !row.Feasible {
			infeasibleOthers++
		}
	}
	b.ReportMetric(float64(infeasibleOthers), "others-infeasible")
}

func BenchmarkProfilingSensitivity(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	errFracs := []float64{0.01, 0.02, 0.04, 0.06, 0.08, 0.10}
	var rows []experiments.SensitivityResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, _, err = r.Sensitivity(1.5, errFracs)
		if err != nil {
			b.Fatal(err)
		}
	}
	tolerated := 0.0
	for _, row := range rows {
		if row.SameAsBase {
			tolerated = row.ErrorFraction
		} else {
			break
		}
	}
	b.ReportMetric(tolerated*100, "tolerated-error-pct")
}

func BenchmarkLatencyConstraints(b *testing.B) {
	var rows []experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Latency([]float64{45e-6, 35e-6}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Aggregate/1e9, "gbps@45us")
	if rows[1].Feasible {
		b.ReportMetric(rows[1].Aggregate/1e9, "gbps@35us")
		b.ReportMetric(float64(rows[1].Bounces), "bounces@35us")
	}
	b.ReportMetric(float64(rows[0].Bounces), "bounces@45us")
}

func BenchmarkMetaCompilerLoC(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	var loc *experiments.LoCResult
	for i := 0; i < b.N; i++ {
		var err error
		loc, err = r.MetaCompilerLoC(0.5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(loc.P4Total), "generated-p4-lines")
	b.ReportMetric(float64(loc.P4Steering), "steering-lines")
	b.ReportMetric(loc.AutoShare*100, "auto-share-pct")
}

func BenchmarkPlacerHeuristic(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	r.SkipMeasure = true
	for i := 0; i < b.N; i++ {
		sr, _, err := r.RunSet([]int{1, 2, 3, 4}, 0.5, placer.SchemeLemur)
		if err != nil {
			b.Fatal(err)
		}
		if !sr.Feasible {
			b.Fatalf("infeasible: %s", sr.Reason)
		}
	}
}

func BenchmarkPlacerBruteForce(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	r.SkipMeasure = true
	r.BruteForceBudget = 2000
	for i := 0; i < b.N; i++ {
		sr, _, err := r.RunSet([]int{1, 2, 3, 4}, 0.5, placer.SchemeOptimal)
		if err != nil {
			b.Fatal(err)
		}
		if !sr.Feasible {
			b.Fatalf("infeasible: %s", sr.Reason)
		}
	}
}

// benchPlace is the placement-only micro-benchmark core: four-chain set,
// δ=0.5, no testbed measurement, allocation accounting on, plus the shared
// PISA compile-cache hit rate as a custom metric.
func benchPlace(b *testing.B, scheme placer.Scheme, parallel int) {
	b.Helper()
	r := experiments.NewRunner(hw.NewPaperTestbed())
	r.SkipMeasure = true
	r.BruteForceBudget = 2000
	r.Parallel = parallel
	pisa.SharedCache().Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sr, _, err := r.RunSet([]int{1, 2, 3, 4}, 0.5, scheme)
		if err != nil {
			b.Fatal(err)
		}
		if !sr.Feasible {
			b.Fatalf("infeasible: %s", sr.Reason)
		}
	}
	b.StopTimer()
	b.ReportMetric(pisa.SharedCache().Stats().HitRate()*100, "cache-hit-pct")
}

func BenchmarkPlaceLemur(b *testing.B)           { benchPlace(b, placer.SchemeLemur, 1) }
func BenchmarkPlaceLemurParallel(b *testing.B)   { benchPlace(b, placer.SchemeLemur, 4) }
func BenchmarkPlaceOptimal(b *testing.B)         { benchPlace(b, placer.SchemeOptimal, 1) }
func BenchmarkPlaceOptimalParallel(b *testing.B) { benchPlace(b, placer.SchemeOptimal, 4) }

// TestPlaceOptimalCostGuard pins the Optimal scheme's cost envelope on the
// BenchmarkPlaceOptimal fixture (four-chain set, δ=0.5, budget 2000): a
// pruning, binder or bound regression that blows up search work fails CI
// here instead of silently multiplying solve time. Ceilings carry ~2x
// headroom over the measured baseline (~117 ms, ~725k allocs per solve);
// the wall-clock bound is a slow-machine-tolerant hang guard.
func TestPlaceOptimalCostGuard(t *testing.T) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	r.SkipMeasure = true
	r.BruteForceBudget = 2000
	r.Parallel = 1
	solve := func() {
		sr, _, err := r.RunSet([]int{1, 2, 3, 4}, 0.5, placer.SchemeOptimal)
		if err != nil {
			t.Fatal(err)
		}
		if !sr.Feasible {
			t.Fatalf("infeasible: %s", sr.Reason)
		}
	}
	start := time.Now()
	allocs := testing.AllocsPerRun(3, solve)
	perSolve := time.Since(start) / 4 // AllocsPerRun does one warmup + 3 runs
	t.Logf("optimal solve: %.0f allocs, %s wall clock", allocs, perSolve)
	if allocs > 1.5e6 {
		t.Errorf("allocations per solve %.0f exceed the 1.5M guard", allocs)
	}
	if perSolve > 5*time.Second {
		t.Errorf("solve took %s, over the 5s guard", perSolve)
	}
}

func BenchmarkFeasibilitySummary(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	schemes := []placer.Scheme{placer.SchemeLemur, placer.SchemeHWPreferred,
		placer.SchemeSWPreferred, placer.SchemeMinBounce, placer.SchemeGreedy}
	var solvShare map[placer.Scheme]float64
	for i := 0; i < b.N; i++ {
		var err error
		_, _, solvShare, err = r.FeasibilitySummary(benchDeltas, schemes)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range schemes {
		b.ReportMetric(solvShare[s]*100, string(s)+"-feasible-pct")
	}
}

// BenchmarkEndToEndDeploy measures the full pipeline on one chain: parse,
// place, compile, deploy, verify — the quickstart path.
func BenchmarkEndToEndDeploy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := New(WithP4Only("IPv4Fwd"))
		if err := sys.LoadSpec(webSpec); err != nil {
			b.Fatal(err)
		}
		dep, err := sys.Deploy()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dep.SendPackets(10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoalescingAblation quantifies heuristic step 2 (DESIGN.md's
// coalescing design choice): Lemur with and without subgroup coalescing on
// the four-chain set.
func BenchmarkCoalescingAblation(b *testing.B) {
	r := experiments.NewRunner(hw.NewPaperTestbed())
	r.SkipMeasure = true
	var full, flat *experiments.SchemeResult
	for i := 0; i < b.N; i++ {
		var err error
		full, _, err = r.RunSet([]int{1, 2, 3, 4}, 1.5, placer.SchemeLemur)
		if err != nil {
			b.Fatal(err)
		}
		flat, _, err = r.RunSet([]int{1, 2, 3, 4}, 1.5, placer.SchemeNoCoalesce)
		if err != nil {
			b.Fatal(err)
		}
	}
	if full.Feasible {
		b.ReportMetric(full.Marginal/1e9, "lemur-marginal-gbps")
	}
	if flat.Feasible {
		b.ReportMetric(flat.Marginal/1e9, "nocoalesce-marginal-gbps")
	} else {
		b.ReportMetric(0, "nocoalesce-marginal-gbps")
	}
}

// simBench deploys a chain set with Lemur and times Simulate at 1.2x the
// placed rates (mild queueing, no drop storm), reporting simulated packets
// per wall-clock second and (with -benchmem) allocations per packet.
func simBench(b *testing.B, src string, seed int64) {
	b.Helper()
	chains, err := nfspec.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	in := &placer.Input{Topo: hw.NewPaperTestbed(), DB: profile.DefaultDB(),
		Restrict: map[string][]hw.Platform{"IPv4Fwd": {hw.PISA}}}
	for _, c := range chains {
		g, err := nfgraph.Build(c)
		if err != nil {
			b.Fatal(err)
		}
		in.Chains = append(in.Chains, g)
	}
	res, err := placer.Place(placer.SchemeLemur, in)
	if err != nil {
		b.Fatal(err)
	}
	if !res.Feasible {
		b.Fatalf("infeasible: %s", res.Reason)
	}
	d, err := metacompiler.Compile(in, res)
	if err != nil {
		b.Fatal(err)
	}
	tb := runtime.New(d, seed)
	offered := make([]float64, len(res.ChainRates))
	for i, r := range res.ChainRates {
		offered[i] = r * 1.2
	}
	cfg := runtime.SimConfig{Seed: seed, DurationSec: 0.3}
	injected := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := tb.Simulate(offered, cfg)
		if err != nil {
			b.Fatal(err)
		}
		injected = 0
		for _, n := range sim.Injected {
			injected += n
		}
	}
	b.StopTimer()
	if injected == 0 {
		b.Fatal("no packets simulated")
	}
	b.ReportMetric(float64(injected)*float64(b.N)/b.Elapsed().Seconds(), "pkts/sec")
	b.ReportMetric(float64(injected), "pkts/op")
}

// benchSimSmall is a single three-NF chain: one server subgroup.
const benchSimSmall = `
chain web {
  slo { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8  dst = 172.16.0.0/12 }
  acl0 = ACL(allow_dst = "172.16.0.0/12", rules = 1024)
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  acl0 -> enc0 -> fwd0
}`

// benchSimMedium adds two more chains so the simulator juggles several
// subgroups, queues and traffic generators at once.
const benchSimMedium = benchSimSmall + `
chain mon {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 11.0.0.0/8 }
  mon0 = Monitor()
  nat0 = NAT()
  fwd1 = IPv4Fwd()
  mon0 -> nat0 -> fwd1
}
chain filt {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 12.0.0.0/8 }
  mat0 = Match(dst_port = 443)
  lim0 = Limiter(rate_mbps = 90000)
  fwd2 = IPv4Fwd()
  mat0 -> lim0 -> fwd2
}`

// BenchmarkSimulate: the discrete-time dataplane simulator hot path (ISSUE 3
// tentpole). Small = one chain/subgroup, Medium = three chains.
func BenchmarkSimulateSmall(b *testing.B)  { simBench(b, benchSimSmall, 7) }
func BenchmarkSimulateMedium(b *testing.B) { simBench(b, benchSimMedium, 7) }

// BenchmarkSimulateDynamics exercises the discrete-time simulator: the
// four-chain deployment at its placed rates (no drops) and at 2x overload
// (drop onset), reporting achieved goodput and loss.
func BenchmarkSimulateDynamics(b *testing.B) {
	sys := New(WithP4Only("IPv4Fwd"))
	if err := sys.LoadSpec(webSpec); err != nil {
		b.Fatal(err)
	}
	dep, err := sys.Deploy()
	if err != nil {
		b.Fatal(err)
	}
	var normal, overload *SimReport
	for i := 0; i < b.N; i++ {
		normal, err = dep.Simulate(1.0)
		if err != nil {
			b.Fatal(err)
		}
		overload, err = dep.Simulate(2.0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(normal.AchievedBps[0]/1e9, "goodput-gbps@1x")
	b.ReportMetric(normal.DropRate[0]*100, "drop-pct@1x")
	b.ReportMetric(overload.AchievedBps[0]/1e9, "goodput-gbps@2x")
	b.ReportMetric(overload.DropRate[0]*100, "drop-pct@2x")
}
