// Package lemur is the public API of the Lemur reproduction — a system that
// places NF (network function) chains across heterogeneous hardware (a PISA
// programmable ToR switch, x86 servers running a BESS-style dataplane, eBPF
// SmartNICs, OpenFlow switches) so that every chain meets its SLO while the
// aggregate marginal throughput is maximized, then auto-generates the
// cross-platform steering code and executes it. It reproduces "Meeting SLOs
// in Cross-Platform NFV" (CoNEXT 2020).
//
// Typical use:
//
//	sys := lemur.New(lemur.WithSmartNIC())
//	err := sys.LoadSpec(`
//	  chain web {
//	    slo { tmin = 2Gbps  tmax = 100Gbps }
//	    aggregate { src = 10.0.0.0/8 }
//	    acl0 = ACL(allow_dst = "172.16.0.0/12")
//	    enc0 = Encrypt()
//	    fwd0 = IPv4Fwd()
//	    acl0 -> enc0 -> fwd0
//	  }`)
//	pl, err := sys.Place()     // where does every NF run, with how many cores?
//	dep, err := sys.Deploy()   // compile + stand up the simulated testbed
//	rep, err := dep.SendPackets(1000)
//	meas, err := dep.Measure() // achieved rates vs the SLO
package lemur

import (
	"fmt"
	"sort"
	"strings"

	"lemur/internal/chaos"
	"lemur/internal/churn"
	"lemur/internal/core"
	"lemur/internal/hw"
	"lemur/internal/metacompiler"
	"lemur/internal/nfgraph"
	"lemur/internal/placer"
	"lemur/internal/runtime"
)

// Scheme selects the placement algorithm.
type Scheme string

// Placement schemes: Lemur's heuristic (default), exhaustive search, and
// the paper's baselines.
const (
	SchemeLemur       Scheme = Scheme(placer.SchemeLemur)
	SchemeOptimal     Scheme = Scheme(placer.SchemeOptimal)
	SchemeHWPreferred Scheme = Scheme(placer.SchemeHWPreferred)
	SchemeSWPreferred Scheme = Scheme(placer.SchemeSWPreferred)
	SchemeMinBounce   Scheme = Scheme(placer.SchemeMinBounce)
	SchemeGreedy      Scheme = Scheme(placer.SchemeGreedy)
)

// Scheduler policies for WithSchedPolicy.
const (
	// SchedEDF drains simulated subgroup queues earliest-deadline-first by
	// the metacompiler's per-subgroup slack whenever a chain carries a delay
	// SLO (d_max or d_max_p99). This is also the default behavior.
	SchedEDF = runtime.SchedEDF
	// SchedRR forces the legacy round-robin drain order even when chains
	// carry deadlines (the baseline arm of the latency experiments).
	SchedRR = runtime.SchedRR
)

// Option configures a System at construction.
type Option func(*options)

type options struct {
	topoOpts    []hw.TestbedOption
	scheme      placer.Scheme
	restrict    map[string][]hw.Platform
	seed        int64
	parallel    int
	headroom    int
	simWorkers  int
	schedPolicy string
}

// WithSmartNIC attaches a 40G eBPF SmartNIC to the first server.
func WithSmartNIC() Option {
	return func(o *options) { o.topoOpts = append(o.topoOpts, hw.WithSmartNIC()) }
}

// WithServers deploys n identical NF servers instead of one.
func WithServers(n int) Option {
	return func(o *options) { o.topoOpts = append(o.topoOpts, hw.WithServers(n)) }
}

// WithOpenFlowSwitch adds an OpenFlow switch to the rack.
func WithOpenFlowSwitch() Option {
	return func(o *options) { o.topoOpts = append(o.topoOpts, hw.WithOpenFlowSwitch()) }
}

// WithSingleSocket restricts servers to one 8-core socket.
func WithSingleSocket() Option {
	return func(o *options) { o.topoOpts = append(o.topoOpts, hw.WithSingleSocket()) }
}

// WithScheme selects the placement algorithm (default SchemeLemur).
func WithScheme(s Scheme) Option {
	return func(o *options) { o.scheme = placer.Scheme(s) }
}

// WithP4Only restricts an NF class to the PISA switch (the evaluation pins
// IPv4Fwd this way).
func WithP4Only(class string) Option {
	return func(o *options) {
		if o.restrict == nil {
			o.restrict = map[string][]hw.Platform{}
		}
		o.restrict[class] = []hw.Platform{hw.PISA}
	}
}

// WithSeed fixes the testbed's measurement seed.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithParallel sets the placer's candidate-evaluation worker count. Values
// <= 1 keep placement serial; any value yields the identical placement (the
// placer reduces candidates in a deterministic order), so this is purely a
// wall-clock knob.
func WithParallel(n int) Option {
	return func(o *options) { o.parallel = n }
}

// WithSimWorkers splits every simulation run (Simulate, SimulateWithFaults,
// SimulateChurn) across n worker shards that own disjoint connected
// components of the deployment's steering graph. Results are byte-identical
// at any value — like WithParallel, this is purely a wall-clock knob; 0 or
// 1 keeps runs serial, and negative values fail the run.
func WithSimWorkers(n int) Option {
	return func(o *options) { o.simWorkers = n }
}

// WithSchedPolicy selects the simulator's queue-drain discipline for every
// simulation run (Simulate, SimulateWithFaults, SimulateChurn): SchedEDF
// (also the default for the empty string) or SchedRR. Deadline-free chain
// sets behave identically under both.
func WithSchedPolicy(policy string) Option {
	return func(o *options) { o.schedPolicy = policy }
}

// WithAdmissionHeadroom reserves cores worker cores per server that the
// placer's throughput-maximizing spare-core pour will not touch, keeping
// budget free for chains admitted later (SimulateChurn, placer.Admit). The
// reserve is discretionary: raising a chain to its t_min SLO may still use
// the cores. The default 0 matches the paper's offline placement, which
// spends every core on marginal throughput.
func WithAdmissionHeadroom(cores int) Option {
	return func(o *options) { o.headroom = cores }
}

// System is one Lemur instance over the paper's rack-scale testbed topology
// (a Tofino-class ToR plus Xeon NF servers).
type System struct {
	sys *core.System
	// schedPolicy is the WithSchedPolicy drain discipline, threaded into
	// every simulate run.
	schedPolicy string
}

// New builds a System over the paper's testbed, customized by options.
func New(opts ...Option) *System {
	o := &options{scheme: placer.SchemeLemur, seed: 1}
	for _, opt := range opts {
		opt(o)
	}
	sys := core.NewSystem(hw.NewPaperTestbed(o.topoOpts...))
	sys.Scheme = o.scheme
	sys.Restrict = o.restrict
	sys.Seed = o.seed
	sys.Parallel = o.parallel
	sys.Headroom = o.headroom
	sys.SimWorkers = o.simWorkers
	return &System{sys: sys, schedPolicy: o.schedPolicy}
}

// LoadSpec parses NF chain specification text (see the nfspec language in
// README) and adds its chains to the system.
func (s *System) LoadSpec(src string) error { return s.sys.LoadSpec(src) }

// Place runs the placement algorithm and returns the outcome. An
// infeasible placement is not an error: inspect Placement.Feasible and
// Placement.Reason.
func (s *System) Place() (*Placement, error) {
	res, err := s.sys.Place()
	if err != nil {
		return nil, err
	}
	return &Placement{sys: s.sys, res: res}, nil
}

// Deploy compiles the placement (running Place first if needed) and stands
// up the simulated cross-platform testbed.
func (s *System) Deploy() (*Deployment, error) {
	tb, err := s.sys.Deploy()
	if err != nil {
		return nil, err
	}
	d, _ := s.sys.Compile() // already cached by Deploy
	return &Deployment{tb: tb, dep: d, workers: s.sys.SimWorkers, schedPolicy: s.schedPolicy}, nil
}

// Placement reports where every NF landed and what the chains will get.
type Placement struct {
	sys *core.System
	res *placer.Result
}

// Feasible reports whether every SLO can be met.
func (p *Placement) Feasible() bool { return p.res.Feasible }

// Reason explains an infeasible placement.
func (p *Placement) Reason() string { return p.res.Reason }

// Stages is the PISA pipeline depth the placement compiled to.
func (p *Placement) Stages() int { return p.res.Stages }

// MarginalBps is the aggregate marginal throughput (Σ rate−t_min).
func (p *Placement) MarginalBps() float64 { return p.res.Marginal }

// Truncated reports whether the Optimal scheme's search hit its budget
// before exhausting the combination space — the Result may be sub-optimal.
// Always false for the other schemes.
func (p *Placement) Truncated() bool { return p.res.Truncated }

// SkippedCombos counts the pattern combinations a truncated Optimal search
// left unscored (see Truncated).
func (p *Placement) SkippedCombos() int { return p.res.SkippedCombos }

// ChainRatesBps returns the LP-assigned per-chain rates.
func (p *Placement) ChainRatesBps() []float64 {
	return append([]float64(nil), p.res.ChainRates...)
}

// NFPlacement is one row of the placement report.
type NFPlacement struct {
	Chain    string
	NF       string
	Class    string
	Platform string // "server", "pisa", "smartnic", "openflow"
	Device   string
}

// Assignments lists every NF's placement, ordered by chain then topology.
func (p *Placement) Assignments() []NFPlacement {
	var out []NFPlacement
	for _, g := range p.sys.Graphs() {
		for _, n := range g.Order {
			if a, ok := p.res.Assign[n]; ok {
				out = append(out, NFPlacement{
					Chain:    g.Chain.Name,
					NF:       n.Name(),
					Class:    n.Class(),
					Platform: a.Platform.String(),
					Device:   a.Device,
				})
			}
		}
	}
	return out
}

// SubgroupInfo is one server run-to-completion group with its cores.
type SubgroupInfo struct {
	Chain  string
	NFs    []string
	Server string
	Cores  int
}

// Subgroups lists the server subgroups and their core allocations.
func (p *Placement) Subgroups() []SubgroupInfo {
	var out []SubgroupInfo
	graphs := p.sys.Graphs()
	for _, sg := range p.res.Subgroups {
		info := SubgroupInfo{Server: sg.Server, Cores: sg.Cores}
		if sg.ChainIdx < len(graphs) {
			info.Chain = graphs[sg.ChainIdx].Chain.Name
		}
		for _, n := range sg.Nodes {
			info.NFs = append(info.NFs, n.Name())
		}
		out = append(out, info)
	}
	return out
}

// Summary renders a human-readable placement report.
func (p *Placement) Summary() string {
	var b strings.Builder
	if !p.res.Feasible {
		fmt.Fprintf(&b, "INFEASIBLE: %s\n", p.res.Reason)
		return b.String()
	}
	fmt.Fprintf(&b, "feasible placement (%d switch stages, marginal %.2f Gbps)\n",
		p.res.Stages, p.res.Marginal/1e9)
	for i, g := range p.sys.Graphs() {
		fmt.Fprintf(&b, "chain %-10s t_min %6.2f Gbps -> rate %6.2f Gbps\n",
			g.Chain.Name, g.Chain.SLO.TMinBps/1e9, p.res.ChainRates[i]/1e9)
	}
	rows := p.Assignments()
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Chain < rows[j].Chain })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %-8s (%-11s) -> %-8s %s\n", r.Chain, r.NF, r.Class, r.Platform, r.Device)
	}
	for _, sg := range p.Subgroups() {
		fmt.Fprintf(&b, "  subgroup [%s] on %s: %d core(s)\n",
			strings.Join(sg.NFs, " -> "), sg.Server, sg.Cores)
	}
	return b.String()
}

// Deployment is a live, compiled cross-platform installation.
type Deployment struct {
	tb  *runtime.Testbed
	dep *metacompiler.Deployment
	// workers is the System's SimWorkers, threaded into every simulate run.
	workers int
	// schedPolicy is the System's scheduler policy (WithSchedPolicy),
	// threaded into every simulate run.
	schedPolicy string
}

// TrafficReport summarizes a packet-walk verification.
type TrafficReport struct {
	Injected, Egressed, Dropped int
}

// SendPackets generates n frames per chain and walks each through the full
// switch/server/NIC path, returning drop/egress accounting. It errors if
// steering ever wedges.
func (d *Deployment) SendPackets(n int) (*TrafficReport, error) {
	stats, err := d.tb.Verify(n)
	if err != nil {
		return nil, err
	}
	return &TrafficReport{Injected: stats.Injected, Egressed: stats.Egressed, Dropped: stats.Dropped}, nil
}

// Measurement reports achieved rates.
type Measurement struct {
	RatesBps        []float64
	AggregateBps    float64
	WorstLatencySec []float64
}

// Measure drives each chain at its placed rate and reports what the
// testbed actually achieves.
func (d *Deployment) Measure() (*Measurement, error) {
	m, err := d.tb.Measure(d.dep.Result.ChainRates)
	if err != nil {
		return nil, err
	}
	return &Measurement{RatesBps: m.Rates, AggregateBps: m.Aggregate, WorstLatencySec: m.WorstLatencySec}, nil
}

// P4Source returns the generated unified switch program.
func (d *Deployment) P4Source() string { return d.dep.Artifacts.P4Source }

// BESSScripts returns the generated per-server pipeline scripts.
func (d *Deployment) BESSScripts() map[string]string {
	out := map[string]string{}
	for k, v := range d.dep.Artifacts.BESSScripts {
		out[k] = v
	}
	return out
}

// EBPFSources returns the generated SmartNIC XDP programs.
func (d *Deployment) EBPFSources() map[string]string {
	out := map[string]string{}
	for k, v := range d.dep.Artifacts.EBPFSources {
		out[k] = v
	}
	return out
}

// AutoGeneratedShare is the fraction of deployment P4 code the
// meta-compiler generated (vs hand-written NF implementations).
func (d *Deployment) AutoGeneratedShare() float64 {
	return d.dep.Artifacts.AutoGeneratedShare()
}

// SimReport summarizes a discrete-time simulation run: per-chain goodput,
// loss, queueing delay at server subgroups, and packet accounting. Failover
// is non-nil only for SimulateWithFaults runs; Churn only for SimulateChurn
// runs (whose per-chain slices index final chain slots — admitted chains
// occupy the appended tail).
type SimReport struct {
	AchievedBps      []float64
	DropRate         []float64
	AvgQueueDelaySec []float64
	P99QueueDelaySec []float64
	// DeadlineCompliance is the per-chain fraction of egressed packets whose
	// queueing delay met the chain's d_max / d_max_p99 deadline. Nil when no
	// chain declares a deadline.
	DeadlineCompliance []float64
	Injected           []int
	Egressed           []int
	Failover           *FailoverOutcome
	Churn              *ChurnOutcome
}

// FailoverOutcome reports a fault-injection run: which scheduled events
// fired, how long each chain was down, what the faults cost in packets, and
// whether each chain's post-failover rate still clears its SLO. Slices are
// per chain, in spec order.
type FailoverOutcome struct {
	Events            []string
	DetectionDelaySec float64
	ReconfigDelaySec  float64
	ReplaceError      string
	RewireSummary     string
	DowntimeSec       []float64
	FaultDrops        []int
	PostWindowSec     float64
	PostAchievedBps   []float64
	PostSLOCompliant  []bool
}

// ChurnOutcome reports a chain-churn run: which scheduled admissions and
// retirements fired, which were rejected (and why), per-chain admission
// latency and churn drops, and post-churn SLO compliance. Per-chain slices
// index final chain slots: chains admitted mid-run occupy the appended tail,
// retired chains keep their slot. Times are seconds of simulated time;
// rates are bits/sec.
type ChurnOutcome struct {
	Events            []string
	DetectionDelaySec float64
	ReconfigDelaySec  float64
	Rejected          []string
	RewireSummaries   []string
	AdmittedAtSec     []float64
	AdmitLatencySec   []float64
	RetiredAtSec      []float64
	ChurnDrops        []int
	PostWindowSec     float64
	PostAchievedBps   []float64
	PostSLOCompliant  []bool
}

// SimulateChurn runs the discrete-time simulator under a deterministic
// chain-churn schedule (the churn grammar, e.g. "admit:chain6@0.3s" or
// "admit:web@0.1s;retire:chain2@0.6s"). Chains named by admit events must be
// loaded into the System but are held out of the initial deployment: the run
// starts with the remaining chains placed and deployed, then each admission
// lands after the detection+reconfiguration window via the incremental
// placer.Admit path (pin-preserving only — full-repack verdicts are recorded
// as rejections), and each retirement stops the chain's load at the request
// and reclaims its resources at the landing. Every chain offers loadFactor ×
// its placed rate; admitted chains offer their admitted rate.
//
// The returned report's Churn field carries the schedule outcome. Like a
// fault run, a churn run rewires its deployment in place, so each call
// deploys fresh state; the System's cached placement is untouched.
func (s *System) SimulateChurn(loadFactor float64, schedule string) (*SimReport, error) {
	plan, err := churn.Parse(schedule)
	if err != nil {
		return nil, err
	}
	admitTargets := map[string]bool{}
	for _, ev := range plan.Events {
		if ev.Kind == churn.Admit {
			admitTargets[ev.Chain] = true
		}
	}
	catalog := map[string]*nfgraph.Graph{}
	for _, g := range s.sys.Graphs() {
		if admitTargets[g.Chain.Name] {
			catalog[g.Chain.Name] = g
		}
	}
	for name := range admitTargets {
		if catalog[name] == nil {
			return nil, fmt.Errorf("lemur: admit target %q is not a loaded chain", name)
		}
	}
	base := s.sys.Subset(func(name string) bool { return !admitTargets[name] })
	tb, err := base.Deploy()
	if err != nil {
		return nil, err
	}
	res := base.Result()
	offered := make([]float64, len(res.ChainRates))
	for i, r := range res.ChainRates {
		offered[i] = r * loadFactor
	}
	sim, err := tb.Simulate(offered, runtime.SimConfig{
		Seed: tb.Seed, DurationSec: 0.5, Churn: plan, ChurnCatalog: catalog,
		Workers: s.sys.SimWorkers, SchedPolicy: s.schedPolicy,
	})
	if err != nil {
		return nil, err
	}
	return newSimReport(sim), nil
}

// Simulate runs the discrete-time packet simulator with every chain
// offering loadFactor × its placed rate (1.0 = the planned operating point;
// >1 provokes queueing and drops). Unlike Measure's steady-state law, this
// walks individual frames through bounded queues with per-core cycle
// budgets, exposing drop onset and latency inflation under overload.
func (d *Deployment) Simulate(loadFactor float64) (*SimReport, error) {
	return d.simulate(loadFactor, nil)
}

// SimulateWithFaults runs the discrete-time simulator with a deterministic
// fault-injection schedule (the chaos grammar, e.g.
// "crash:nf-server-1@0.3s" or "crash:nf-server-1@0.1s;overload:nf-server-2@0.2sx4").
// Crashes drop in-flight packets, blackhole steered traffic for the
// detection+reconfiguration window, then trigger an incremental
// re-placement and steering rewire mid-run; the returned report's Failover
// field carries per-chain downtime, fault drops, and post-failover SLO
// compliance. A failover run rewires the deployment in place — Deploy a
// fresh one per run.
func (d *Deployment) SimulateWithFaults(loadFactor float64, schedule string) (*SimReport, error) {
	plan, err := chaos.Parse(schedule)
	if err != nil {
		return nil, err
	}
	return d.simulate(loadFactor, plan)
}

func (d *Deployment) simulate(loadFactor float64, plan *chaos.Plan) (*SimReport, error) {
	offered := make([]float64, len(d.dep.Result.ChainRates))
	for i, r := range d.dep.Result.ChainRates {
		offered[i] = r * loadFactor
	}
	sim, err := d.tb.Simulate(offered, runtime.SimConfig{
		Seed: d.tb.Seed, DurationSec: 0.5, Faults: plan,
		Workers: d.workers, SchedPolicy: d.schedPolicy,
	})
	if err != nil {
		return nil, err
	}
	return newSimReport(sim), nil
}

// newSimReport translates the runtime's simulation result into the public
// report shape.
func newSimReport(sim *runtime.SimResult) *SimReport {
	rep := &SimReport{
		AchievedBps:        sim.AchievedBps,
		DropRate:           sim.DropRate,
		AvgQueueDelaySec:   sim.AvgQueueDelaySec,
		P99QueueDelaySec:   sim.P99QueueDelaySec,
		DeadlineCompliance: sim.DeadlineCompliance,
		Injected:           sim.Injected,
		Egressed:           sim.Egressed,
	}
	if fo := sim.Failover; fo != nil {
		rep.Failover = &FailoverOutcome{
			Events:            fo.Events,
			DetectionDelaySec: fo.DetectionDelaySec,
			ReconfigDelaySec:  fo.ReconfigDelaySec,
			ReplaceError:      fo.ReplaceError,
			RewireSummary:     fo.RewireSummary,
			DowntimeSec:       fo.DowntimeSec,
			FaultDrops:        fo.FaultDrops,
			PostWindowSec:     fo.PostWindowSec,
			PostAchievedBps:   fo.PostAchievedBps,
			PostSLOCompliant:  fo.PostSLOCompliant,
		}
	}
	if co := sim.Churn; co != nil {
		rep.Churn = &ChurnOutcome{
			Events:            co.Events,
			DetectionDelaySec: co.DetectionDelaySec,
			ReconfigDelaySec:  co.ReconfigDelaySec,
			Rejected:          co.Rejected,
			RewireSummaries:   co.RewireSummaries,
			AdmittedAtSec:     co.AdmittedAtSec,
			AdmitLatencySec:   co.AdmitLatencySec,
			RetiredAtSec:      co.RetiredAtSec,
			ChurnDrops:        co.ChurnDrops,
			PostWindowSec:     co.PostWindowSec,
			PostAchievedBps:   co.PostAchievedBps,
			PostSLOCompliant:  co.PostSLOCompliant,
		}
	}
	return rep
}
