#!/usr/bin/env bash
# Docs gate: fail if README.md, ARCHITECTURE.md, or OPERATIONS.md reference
# a CLI flag, a package symbol, or a test name that no longer exists in the
# tree. Grep-based on purpose — no build step, runs in ci.sh before the
# tests.
set -u
cd "$(dirname "$0")/.."

docs="README.md ARCHITECTURE.md OPERATIONS.md"
fail=0

# --- CLI flags -------------------------------------------------------------
# Every `-flag` token on a doc line invoking `cmd/<tool>`, and every
# backticked `` `-flag` `` mention, must be defined via the flag package in
# some cmd/ tool. Both the global flag.String style and the subcommand
# fs.String-on-a-FlagSet style (cmd/lemurd) count as definitions.
all_defined=$(grep -hoE '(flag|fs)\.[A-Za-z]+\("[a-z0-9-]+"' cmd/*/*.go |
	sed -E 's/.*"([a-z0-9-]+)"/\1/' | sort -u)

for tool in lemur lemur-bench lemur-profile lemurd; do
	defined=$(grep -hoE '(flag|fs)\.[A-Za-z]+\("[a-z0-9-]+"' cmd/$tool/*.go |
		sed -E 's/.*"([a-z0-9-]+)"/\1/' | sort -u)
	# "cmd/$tool " (trailing space) keeps cmd/lemur from matching lemur-bench.
	used=$(grep -hoE "cmd/$tool [^\`]*" $docs |
		grep -oE '(^| )-[a-z][a-z0-9-]*' | sed -E 's/^ ?-//' | sort -u)
	for f in $used; do
		if ! printf '%s\n' "$defined" | grep -qx "$f"; then
			echo "docs gate: flag -$f used with cmd/$tool in docs but not defined there"
			fail=1
		fi
	done
done

inline=$(grep -hoE '`-[a-z][a-z0-9-]*`' $docs | tr -d '`' | sed 's/^-//' | sort -u)
for f in $inline; do
	if ! printf '%s\n' "$all_defined" | grep -qx "$f"; then
		echo "docs gate: flag -$f mentioned in docs but defined by no cmd/ tool"
		fail=1
	fi
done

# --- Package symbols -------------------------------------------------------
# Backticked dotted references like `placer.Admit`, `pisa.ConservativeEstimate`
# or `metacompiler.Deployment.Rewire`: the identifier after the package name
# must appear in that package's sources. Unknown package prefixes (URLs,
# file names, field paths like rep.Churn) are skipped.
syms=$(grep -hoE '`[a-z][a-z0-9]*\.[A-Z][A-Za-z0-9]*(\.[A-Za-z0-9]+)*' $docs |
	tr -d '`' | sort -u)
for s in $syms; do
	pkg=${s%%.*}
	sym=$(printf '%s' "$s" | cut -d. -f2)
	if [ "$pkg" = lemur ]; then
		dir="."
	elif [ -d "internal/$pkg" ]; then
		dir="internal/$pkg"
	else
		continue
	fi
	if ! grep -qrE "(func|type|var|const)[^(]*[( ]$sym\b|func \([^)]*\) $sym\(|$sym [A-Za-z[*]|$sym\(\) " \
		--include='*.go' "$dir" && ! grep -qr "$sym" --include='*.go' "$dir"; then
		echo "docs gate: symbol $s referenced in docs but $sym not found in $dir"
		fail=1
	fi
done

# --- Test names ------------------------------------------------------------
# Backticked `TestXxx`/`FuzzXxx`/`BenchmarkXxx` references must exist.
tests=$(grep -hoE '`(Test|Fuzz|Benchmark)[A-Za-z0-9_]+' $docs | tr -d '`' | sort -u)
for t in $tests; do
	if ! grep -qr "func $t(" --include='*_test.go' .; then
		echo "docs gate: test $t referenced in docs but no such function exists"
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "docs gate: FAILED"
	exit 1
fi
echo "docs gate: OK"
