package lemur_test

import (
	"fmt"
	"log"

	"lemur"
)

// Example shows the whole workflow: declare a chain with an SLO, place it,
// deploy it on the simulated rack, and push traffic through.
func Example() {
	sys := lemur.New(lemur.WithP4Only("IPv4Fwd"))
	err := sys.LoadSpec(`
chain border {
  slo       { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8  dst = 172.16.0.0/12 }
  acl0 = ACL(allow_dst = "172.16.0.0/12", rules = 1024)
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  acl0 -> enc0 -> fwd0
}`)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := sys.Place()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", pl.Feasible())

	dep, err := sys.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dep.SendPackets(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("egressed %d/%d\n", rep.Egressed, rep.Injected)
	// Output:
	// feasible: true
	// egressed 100/100
}

// ExampleSystem_Place demonstrates inspecting an infeasible placement: the
// Placer reports *why* the SLO cannot be met instead of failing opaquely.
func ExampleSystem_Place() {
	sys := lemur.New(lemur.WithP4Only("IPv4Fwd"))
	err := sys.LoadSpec(`
chain greedy {
  slo { tmin = 80Gbps  tmax = 100Gbps }
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  enc0 -> fwd0
}`)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := sys.Place()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", pl.Feasible())
	fmt.Println("has reason:", pl.Reason() != "")
	// Output:
	// feasible: false
	// has reason: true
}

// ExampleSystem_schemes compares Lemur against a baseline on the same input.
func ExampleSystem_schemes() {
	spec := `
chain c {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  ded0 = Dedup()
  lim0 = Limiter()
  fwd0 = IPv4Fwd()
  ded0 -> lim0 -> fwd0
}`
	for _, scheme := range []lemur.Scheme{lemur.SchemeLemur, lemur.SchemeSWPreferred} {
		sys := lemur.New(lemur.WithScheme(scheme), lemur.WithP4Only("IPv4Fwd"))
		if err := sys.LoadSpec(spec); err != nil {
			log.Fatal(err)
		}
		pl, err := sys.Place()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s feasible: %v\n", scheme, pl.Feasible())
	}
	// Output:
	// Lemur feasible: true
	// SWPreferred feasible: false
}
