package lemur_test

import (
	"fmt"
	"log"

	"lemur"
)

// Example shows the whole workflow: declare a chain with an SLO, place it,
// deploy it on the simulated rack, and push traffic through.
func Example() {
	sys := lemur.New(lemur.WithP4Only("IPv4Fwd"))
	err := sys.LoadSpec(`
chain border {
  slo       { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.0.0.0/8  dst = 172.16.0.0/12 }
  acl0 = ACL(allow_dst = "172.16.0.0/12", rules = 1024)
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  acl0 -> enc0 -> fwd0
}`)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := sys.Place()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", pl.Feasible())

	dep, err := sys.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dep.SendPackets(100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("egressed %d/%d\n", rep.Egressed, rep.Injected)
	// Output:
	// feasible: true
	// egressed 100/100
}

// ExampleSystem_Place demonstrates inspecting an infeasible placement: the
// Placer reports *why* the SLO cannot be met instead of failing opaquely.
func ExampleSystem_Place() {
	sys := lemur.New(lemur.WithP4Only("IPv4Fwd"))
	err := sys.LoadSpec(`
chain greedy {
  slo { tmin = 80Gbps  tmax = 100Gbps }
  enc0 = Encrypt()
  fwd0 = IPv4Fwd()
  enc0 -> fwd0
}`)
	if err != nil {
		log.Fatal(err)
	}
	pl, err := sys.Place()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("feasible:", pl.Feasible())
	fmt.Println("has reason:", pl.Reason() != "")
	// Output:
	// feasible: false
	// has reason: true
}

// ExampleDeployment_SimulateWithFaults crashes a server mid-run and shows
// the failover outcome: the schedule fires, the survivors are re-placed, and
// the report says whether every chain still clears its SLO afterwards.
func ExampleDeployment_SimulateWithFaults() {
	sys := lemur.New(lemur.WithServers(2), lemur.WithP4Only("IPv4Fwd"))
	err := sys.LoadSpec(`
chain web {
  slo       { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.1.0.0/16 }
  mon0 = Monitor()
  fwd0 = IPv4Fwd()
  mon0 -> fwd0
}
chain mail {
  slo       { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.2.0.0/16 }
  nat0 = NAT()
  fwd0 = IPv4Fwd()
  nat0 -> fwd0
}`)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := sys.Deploy()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := dep.SimulateWithFaults(1.0, "crash:nf-server-0@0.1s")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("events fired:", len(rep.Failover.Events))
	fmt.Println("rewired:", rep.Failover.RewireSummary != "")
	fmt.Println("post-failover SLOs met:", rep.Failover.PostSLOCompliant[0] && rep.Failover.PostSLOCompliant[1])
	// Output:
	// events fired: 1
	// rewired: true
	// post-failover SLOs met: true
}

// ExampleSystem_SimulateChurn admits one chain mid-run and retires another:
// chains named by admit events are loaded but held out of the initial
// deployment, then land through the pin-preserving incremental placer after
// the detection+reconfiguration window.
func ExampleSystem_SimulateChurn() {
	sys := lemur.New(lemur.WithP4Only("IPv4Fwd"), lemur.WithAdmissionHeadroom(4))
	err := sys.LoadSpec(`
chain web {
  slo       { tmin = 2Gbps  tmax = 100Gbps }
  aggregate { src = 10.1.0.0/16 }
  mon0 = Monitor()
  fwd0 = IPv4Fwd()
  mon0 -> fwd0
}
chain mail {
  slo       { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 10.2.0.0/16 }
  nat0 = NAT()
  fwd0 = IPv4Fwd()
  nat0 -> fwd0
}
chain backup {
  slo       { tmin = 1Gbps  tmax = 100Gbps }
  aggregate { src = 10.3.0.0/16 }
  lim0 = Limiter()
  fwd0 = IPv4Fwd()
  lim0 -> fwd0
}`)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.SimulateChurn(1.0, "admit:backup@0.1s;retire:mail@0.3s")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("events fired:", len(rep.Churn.Events))
	fmt.Println("rejected:", len(rep.Churn.Rejected))
	fmt.Println("chains at end of run:", len(rep.AchievedBps))
	fmt.Println("backup admitted mid-run:", rep.Churn.AdmittedAtSec[2] > 0)
	fmt.Println("mail retired mid-run:", rep.Churn.RetiredAtSec[1] > 0)
	// Output:
	// events fired: 2
	// rejected: 0
	// chains at end of run: 3
	// backup admitted mid-run: true
	// mail retired mid-run: true
}

// ExampleSystem_schemes compares Lemur against a baseline on the same input.
func ExampleSystem_schemes() {
	spec := `
chain c {
  slo { tmin = 1Gbps  tmax = 100Gbps }
  ded0 = Dedup()
  lim0 = Limiter()
  fwd0 = IPv4Fwd()
  ded0 -> lim0 -> fwd0
}`
	for _, scheme := range []lemur.Scheme{lemur.SchemeLemur, lemur.SchemeSWPreferred} {
		sys := lemur.New(lemur.WithScheme(scheme), lemur.WithP4Only("IPv4Fwd"))
		if err := sys.LoadSpec(spec); err != nil {
			log.Fatal(err)
		}
		pl, err := sys.Place()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s feasible: %v\n", scheme, pl.Feasible())
	}
	// Output:
	// Lemur feasible: true
	// SWPreferred feasible: false
}
